//! Supervised job execution for experiment batches.
//!
//! A [`Supervisor`] owns a small pool of worker threads fed from a
//! **bounded** queue. Each submitted job runs with:
//!
//! * **panic isolation** — the job body runs under `catch_unwind`; a panic
//!   becomes a structured [`JobError::Panicked`] report (payload string
//!   preserved) and the worker *respawns itself* with a fresh stack before
//!   exiting, so one poisoned experiment cannot take the pool down;
//! * **a per-job deadline** — `timeout_s` arms a [`Deadline`] inside the
//!   [`Interrupt`] handed to the job, which the fabrics poll at cycle
//!   granularity;
//! * **retry with capped exponential backoff** — a job that fails with
//!   [`WorkError::Transient`] is retried up to `max_attempts` times; the
//!   backoff doubles from `backoff_base_ms` up to `backoff_cap_ms`, plus a
//!   *deterministic* jitter derived from `(seed, job id, attempt)` so
//!   reports are reproducible while herds still decorrelate;
//! * **backpressure** — submitting to a full queue fails fast with
//!   [`JobError::QueueFull`] carrying a suggested retry delay, instead of
//!   blocking the producer;
//! * **cooperative cancellation** — [`Supervisor::cancel_all`] trips a
//!   shared [`CancelToken`]; running jobs are
//!   cancelled mid-simulation by their interrupt, queued jobs report
//!   [`JobError::Cancelled`] without running, and the batch drains cleanly
//!   (the SIGINT path in `run_batch`).
//!
//! Every submitted job produces exactly one [`JobReport`], success or not —
//! the invariant the drain loop counts on.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use sim_core::cancel::{CancelToken, CancelWatch, Deadline, Interrupt};

use crate::cache::fnv1a64;

/// Pool sizing and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; a submit beyond this fails with
    /// [`JobError::QueueFull`].
    pub queue_cap: usize,
    /// Attempts per job (1 = no retries).
    pub max_attempts: u32,
    /// First retry backoff, milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 1,
            queue_cap: 64,
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            seed: 0,
        }
    }
}

impl SupervisorConfig {
    /// Backoff before retry `attempt` (2-based: the sleep after attempt
    /// `attempt - 1` failed), for `job_id`: capped exponential plus a
    /// deterministic jitter in `[0, backoff_base_ms)` hashed from
    /// `(seed, job_id, attempt)`.
    pub fn backoff_ms(&self, job_id: u64, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(2).min(32);
        let base = (self.backoff_base_ms << shift).min(self.backoff_cap_ms);
        let jitter = if self.backoff_base_ms == 0 {
            0
        } else {
            let mut bytes = Vec::with_capacity(20);
            bytes.extend_from_slice(&self.seed.to_le_bytes());
            bytes.extend_from_slice(&job_id.to_le_bytes());
            bytes.extend_from_slice(&attempt.to_le_bytes());
            fnv1a64(&bytes) % self.backoff_base_ms
        };
        base + jitter
    }
}

/// What a job body returns on success.
#[derive(Debug, Clone)]
pub struct JobSuccess {
    /// The result bytes (JSON) the job produced or fetched from the cache.
    pub json: String,
    /// Whether the bytes came from the result cache.
    pub cached: bool,
    /// FNV-1a fingerprint of `json` (the perf-gate witness).
    pub fingerprint: u64,
}

/// How a job body failed. The supervisor decides retry vs. give-up from
/// the variant, so the body must classify its own errors.
#[derive(Debug, Clone)]
pub enum WorkError {
    /// The job's interrupt fired (deadline, cancel-all token, …). Never
    /// retried — the cause won't go away.
    Cancelled {
        /// The fabric's structured cancellation message.
        detail: String,
    },
    /// A failure worth retrying (e.g. a transient resource error).
    Transient {
        /// What went wrong.
        detail: String,
    },
    /// A failure retrying cannot fix (bad configuration, simulation bug).
    Fatal {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for WorkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkError::Cancelled { detail } => write!(f, "Cancelled: {detail}"),
            WorkError::Transient { detail } => write!(f, "transient: {detail}"),
            WorkError::Fatal { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for WorkError {}

/// Terminal failure recorded in a [`JobReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job body panicked; the worker respawned.
    Panicked {
        /// The panic payload, stringified.
        payload: String,
    },
    /// The job was cancelled (deadline or batch-wide cancel).
    Cancelled {
        /// The structured cancellation message.
        detail: String,
    },
    /// The job failed on every attempt.
    Failed {
        /// The final attempt's error.
        detail: String,
        /// Attempts made.
        attempts: u32,
    },
    /// The submit was rejected: the bounded queue is full. Carries a
    /// suggested producer-side delay before resubmitting.
    QueueFull {
        /// Suggested wait before retrying the submit, milliseconds.
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked { payload } => write!(f, "panicked: {payload}"),
            JobError::Cancelled { detail } => write!(f, "Cancelled: {detail}"),
            JobError::Failed { detail, attempts } => {
                write!(f, "failed after {attempts} attempts: {detail}")
            }
            JobError::QueueFull { retry_after_ms } => {
                write!(f, "queue full; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// One report per submitted job — the supervisor's only output channel.
#[derive(Debug)]
pub struct JobReport {
    /// The id `submit` returned.
    pub id: u64,
    /// The job's name.
    pub name: String,
    /// Attempts actually made (0 when cancelled before the first).
    pub attempts: u32,
    /// Total backoff slept between attempts, milliseconds (deterministic).
    pub backoff_ms_total: u64,
    /// The outcome.
    pub result: Result<JobSuccess, JobError>,
}

/// A job body: takes the interrupt the supervisor armed for this attempt
/// (deadline + batch cancel token; `None` when neither is configured) and
/// returns the result bytes. Must be re-runnable — retries call it again.
pub type Work = dyn Fn(Option<Interrupt>) -> Result<JobSuccess, WorkError> + Send + Sync;

struct Job {
    id: u64,
    name: String,
    timeout_s: Option<f64>,
    work: Arc<Work>,
}

/// Queue states: open (accepting + serving), or closed (serve remainder,
/// then workers exit).
struct Queue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    cfg: SupervisorConfig,
    queue: Mutex<Queue>,
    queue_changed: Condvar,
    reports: mpsc::Sender<JobReport>,
    cancel: CancelToken,
    /// Watch armed at pool construction: any `cancel_all` after that is
    /// visible to every worker.
    watch: CancelWatch,
    live_workers: Mutex<usize>,
    workers_changed: Condvar,
    respawns: AtomicU64,
}

impl Shared {
    fn pop(&self) -> Option<Job> {
        let mut q = self.queue.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.closed {
                return None;
            }
            q = self.queue_changed.wait(q).expect("queue lock poisoned");
        }
    }
}

/// The worker pool. Dropping it without calling [`Supervisor::shutdown`]
/// closes the queue and detaches the workers (they finish the backlog).
pub struct Supervisor {
    shared: Arc<Shared>,
    /// Behind a mutex so a `Supervisor` can be shared (`Arc`) across the
    /// daemon's connection handlers and reaper thread; only one consumer
    /// drains reports at a time.
    reports: Mutex<mpsc::Receiver<JobReport>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
}

impl Supervisor {
    /// Spawn the pool.
    ///
    /// # Panics
    /// On `workers == 0`, `queue_cap == 0`, or `max_attempts == 0` (a
    /// misconfigured harness, not a runtime condition), or if the OS
    /// refuses to spawn a thread.
    pub fn new(cfg: SupervisorConfig) -> Self {
        assert!(cfg.workers >= 1, "supervisor needs at least one worker");
        assert!(cfg.queue_cap >= 1, "queue capacity must be positive");
        assert!(cfg.max_attempts >= 1, "jobs need at least one attempt");
        let (tx, rx) = mpsc::channel();
        let cancel = CancelToken::new();
        let shared = Arc::new(Shared {
            cfg,
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                closed: false,
            }),
            queue_changed: Condvar::new(),
            reports: tx,
            watch: cancel.watch(),
            cancel,
            live_workers: Mutex::new(cfg.workers),
            workers_changed: Condvar::new(),
            respawns: AtomicU64::new(0),
        });
        for idx in 0..cfg.workers {
            spawn_worker(Arc::clone(&shared), idx, 0);
        }
        Supervisor {
            shared,
            reports: Mutex::new(rx),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
        }
    }

    /// Enqueue a job. Returns its id, or [`JobError::QueueFull`] when the
    /// bounded queue is at capacity (nothing is enqueued; resubmit after
    /// the suggested delay).
    pub fn submit(
        &self,
        name: impl Into<String>,
        timeout_s: Option<f64>,
        work: Arc<Work>,
    ) -> Result<u64, JobError> {
        let name = name.into();
        let mut q = self.shared.queue.lock().expect("queue lock poisoned");
        assert!(!q.closed, "submit after shutdown");
        if q.jobs.len() >= self.shared.cfg.queue_cap {
            return Err(JobError::QueueFull {
                retry_after_ms: self.shared.cfg.backoff_base_ms.max(1),
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        q.jobs.push_back(Job {
            id,
            name,
            timeout_s,
            work,
        });
        drop(q);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.queue_changed.notify_one();
        Ok(id)
    }

    /// Jobs accepted so far (each will produce exactly one report).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Workers respawned after a panic so far.
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Trip the batch-wide cancel token: running jobs are interrupted at
    /// their fabrics' next poll, queued jobs report `Cancelled` without
    /// running. Safe to call from a signal-handler-adjacent context (the
    /// token is a single atomic store).
    pub fn cancel_all(&self) {
        self.shared.cancel.cancel();
        // Wake idle workers so a cancelled empty batch still drains.
        self.shared.queue_changed.notify_all();
    }

    /// Wait up to `timeout` for the next report. `None` on timeout or when
    /// every worker has exited and no report is pending.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<JobReport> {
        self.reports
            .lock()
            .expect("report receiver lock poisoned")
            .recv_timeout(timeout)
            .ok()
    }

    /// Close the queue, wait for the workers to finish the backlog, and
    /// return every report not yet consumed via
    /// [`Supervisor::recv_timeout`], in completion order. The supervisor
    /// stays queryable afterwards ([`Supervisor::respawns`] etc.), but
    /// further submits panic.
    pub fn shutdown(&self) -> Vec<JobReport> {
        {
            let mut q = self.shared.queue.lock().expect("queue lock poisoned");
            q.closed = true;
        }
        self.shared.queue_changed.notify_all();
        {
            let mut live = self
                .shared
                .live_workers
                .lock()
                .expect("worker count lock poisoned");
            while *live > 0 {
                live = self
                    .shared
                    .workers_changed
                    .wait(live)
                    .expect("worker count lock poisoned");
            }
        }
        self.reports
            .lock()
            .expect("report receiver lock poisoned")
            .try_iter()
            .collect()
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        // Close the queue so idle workers exit instead of blocking forever;
        // busy workers finish the backlog detached.
        if let Ok(mut q) = self.shared.queue.lock() {
            q.closed = true;
        }
        self.shared.queue_changed.notify_all();
    }
}

fn spawn_worker(shared: Arc<Shared>, idx: usize, generation: u64) {
    std::thread::Builder::new()
        // `run_batch` suppresses default panic-hook noise for threads with
        // this name prefix, so keep it in sync with the bin.
        .name(format!("sup-worker-{idx}-g{generation}"))
        .spawn(move || worker_loop(shared, idx, generation))
        .expect("spawn supervisor worker");
}

fn worker_loop(shared: Arc<Shared>, idx: usize, generation: u64) {
    while let Some(job) = shared.pop() {
        let report = run_job(&shared, &job);
        let panicked = matches!(report.result, Err(JobError::Panicked { .. }));
        // The receiver outlives the workers (the Supervisor holds it until
        // shutdown returns); a send failure means the whole pool was
        // abandoned, in which case dropping the report is the only option.
        let _ = shared.reports.send(report);
        if panicked {
            // Replace ourselves with a fresh stack: bump the live count
            // *before* this thread exits so shutdown can never observe a
            // moment with the worker missing.
            {
                let mut live = shared
                    .live_workers
                    .lock()
                    .expect("worker count lock poisoned");
                *live += 1;
            }
            shared.respawns.fetch_add(1, Ordering::Relaxed);
            spawn_worker(Arc::clone(&shared), idx, generation + 1);
            break;
        }
    }
    let mut live = shared
        .live_workers
        .lock()
        .expect("worker count lock poisoned");
    *live -= 1;
    drop(live);
    shared.workers_changed.notify_all();
}

/// Run one job to a terminal report: deadline + cancel checks, panic
/// isolation, transient-retry loop.
fn run_job(shared: &Shared, job: &Job) -> JobReport {
    let cfg = &shared.cfg;
    let mut attempts = 0u32;
    let mut backoff_ms_total = 0u64;
    let result = loop {
        // Batch-wide cancellation wins before (re)starting work.
        if shared.watch.is_cancelled() {
            break Err(JobError::Cancelled {
                detail: "batch cancelled before the attempt started".to_string(),
            });
        }
        attempts += 1;
        // Arm a fresh deadline per attempt (a retry gets the full budget)
        // plus the batch cancel token.
        let mut intr = Interrupt::new().with_watch(shared.watch.clone());
        if let Some(s) = job.timeout_s {
            intr = intr.with_deadline(Deadline::after_secs_f64(s));
        }
        let work = Arc::clone(&job.work);
        match catch_unwind(AssertUnwindSafe(move || (work)(Some(intr)))) {
            Err(payload) => {
                break Err(JobError::Panicked {
                    payload: panic_payload_string(payload.as_ref()),
                })
            }
            Ok(Ok(success)) => break Ok(success),
            Ok(Err(WorkError::Cancelled { detail })) => break Err(JobError::Cancelled { detail }),
            Ok(Err(WorkError::Fatal { detail })) => {
                break Err(JobError::Failed { detail, attempts })
            }
            Ok(Err(WorkError::Transient { detail })) => {
                if attempts >= cfg.max_attempts {
                    break Err(JobError::Failed { detail, attempts });
                }
                let ms = cfg.backoff_ms(job.id, attempts + 1);
                backoff_ms_total += ms;
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
    };
    JobReport {
        id: job.id,
        name: job.name.clone(),
        attempts,
        backoff_ms_total,
        result,
    }
}

/// Stringify a `catch_unwind` payload: `&str` and `String` payloads (the
/// ones `panic!` produces) verbatim, anything else a placeholder.
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn quiet_cfg() -> SupervisorConfig {
        SupervisorConfig {
            workers: 2,
            queue_cap: 8,
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            seed: 7,
        }
    }

    fn ok_work(json: &str) -> Arc<Work> {
        let json = json.to_string();
        Arc::new(move |_| {
            Ok(JobSuccess {
                fingerprint: fnv1a64(json.as_bytes()),
                json: json.clone(),
                cached: false,
            })
        })
    }

    #[test]
    fn completes_jobs_and_reports_each_exactly_once() {
        let sup = Supervisor::new(quiet_cfg());
        for i in 0..5 {
            sup.submit(format!("job-{i}"), None, ok_work(&format!("r{i}")))
                .unwrap();
        }
        let reports = sup.shutdown();
        assert_eq!(reports.len(), 5);
        let mut names: Vec<String> = reports.iter().map(|r| r.name.clone()).collect();
        names.sort();
        assert_eq!(
            names,
            (0..5).map(|i| format!("job-{i}")).collect::<Vec<_>>()
        );
        for r in &reports {
            let s = r.result.as_ref().expect("all jobs succeed");
            assert_eq!(r.attempts, 1);
            assert!(!s.cached);
            assert_eq!(s.fingerprint, fnv1a64(s.json.as_bytes()));
        }
    }

    #[test]
    fn panic_is_isolated_and_worker_respawns() {
        let sup = Supervisor::new(SupervisorConfig {
            workers: 1,
            ..quiet_cfg()
        });
        sup.submit(
            "boom",
            None,
            Arc::new(|_| panic!("forced panic: supervisor test")),
        )
        .unwrap();
        // The pool must still serve work after the panic: same single
        // worker slot, fresh thread.
        sup.submit("after", None, ok_work("fine")).unwrap();
        let reports = sup.shutdown();
        assert_eq!(reports.len(), 2);
        let boom = reports.iter().find(|r| r.name == "boom").unwrap();
        match &boom.result {
            Err(JobError::Panicked { payload }) => {
                assert_eq!(payload, "forced panic: supervisor test");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        let after = reports.iter().find(|r| r.name == "after").unwrap();
        assert!(after.result.is_ok(), "pool survives the panic");
        assert_eq!(sup.respawns(), 1, "exactly one worker was replaced");
    }

    #[test]
    fn transient_failures_retry_with_deterministic_backoff() {
        let cfg = quiet_cfg();
        let sup = Supervisor::new(cfg);
        let calls = Arc::new(AtomicU32::new(0));
        let c = Arc::clone(&calls);
        sup.submit(
            "flaky",
            None,
            Arc::new(move |_| {
                if c.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err(WorkError::Transient {
                        detail: "not yet".to_string(),
                    })
                } else {
                    Ok(JobSuccess {
                        json: "{}".to_string(),
                        cached: false,
                        fingerprint: fnv1a64(b"{}"),
                    })
                }
            }),
        )
        .unwrap();
        let reports = sup.shutdown();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert!(r.result.is_ok());
        assert_eq!(r.attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        // Backoff total is the deterministic function of (seed, id=0,
        // attempts 2 and 3).
        assert_eq!(
            r.backoff_ms_total,
            cfg.backoff_ms(0, 2) + cfg.backoff_ms(0, 3)
        );
    }

    #[test]
    fn transient_exhaustion_is_failed_with_attempt_count() {
        let sup = Supervisor::new(quiet_cfg());
        sup.submit(
            "hopeless",
            None,
            Arc::new(|_| {
                Err(WorkError::Transient {
                    detail: "always down".to_string(),
                })
            }),
        )
        .unwrap();
        let reports = sup.shutdown();
        match &reports[0].result {
            Err(JobError::Failed { detail, attempts }) => {
                assert_eq!(detail, "always down");
                assert_eq!(*attempts, 3);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn deadline_is_armed_and_cancels_the_attempt() {
        let sup = Supervisor::new(quiet_cfg());
        sup.submit(
            "deadline",
            Some(0.0),
            Arc::new(|intr| {
                let mut intr = intr.expect("timeout arms an interrupt");
                match intr.check(0) {
                    Some(cause) => Err(WorkError::Cancelled {
                        detail: format!("Cancelled at poll 0 ({cause})"),
                    }),
                    None => Err(WorkError::Fatal {
                        detail: "expired deadline did not fire".to_string(),
                    }),
                }
            }),
        )
        .unwrap();
        let reports = sup.shutdown();
        match &reports[0].result {
            Err(JobError::Cancelled { detail }) => {
                assert!(detail.contains("deadline exceeded"), "{detail}");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert_eq!(reports[0].attempts, 1, "cancellation is not retried");
    }

    #[test]
    fn queue_full_is_reported_with_backpressure_hint() {
        let sup = Supervisor::new(SupervisorConfig {
            workers: 1,
            queue_cap: 1,
            ..quiet_cfg()
        });
        // Park the single worker so the queue cannot drain.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        sup.submit(
            "parked",
            None,
            Arc::new(move |_| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Ok(JobSuccess {
                    json: "{}".to_string(),
                    cached: false,
                    fingerprint: fnv1a64(b"{}"),
                })
            }),
        )
        .unwrap();
        // Give the worker a moment to take "parked" off the queue, then
        // fill the single slot and overflow it.
        std::thread::sleep(Duration::from_millis(20));
        sup.submit("queued", None, ok_work("q")).unwrap();
        let err = sup.submit("overflow", None, ok_work("o")).unwrap_err();
        match err {
            JobError::QueueFull { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let reports = sup.shutdown();
        assert_eq!(reports.len(), 2, "the rejected job was never enqueued");
    }

    #[test]
    fn cancel_all_drains_queued_jobs_without_running_them() {
        // One worker parked on a gate; three more jobs queued behind it.
        let sup = Supervisor::new(SupervisorConfig {
            workers: 1,
            ..quiet_cfg()
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let ran = Arc::new(AtomicU32::new(0));
        sup.submit(
            "parked",
            None,
            Arc::new(move |intr| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                // After the gate opens the batch is cancelled: a polling
                // fabric would see it immediately.
                let mut intr = intr.expect("cancel token arms the interrupt");
                match intr.check(0) {
                    Some(cause) => Err(WorkError::Cancelled {
                        detail: format!("Cancelled mid-run ({cause})"),
                    }),
                    None => Err(WorkError::Fatal {
                        detail: "cancel_all not visible".to_string(),
                    }),
                }
            }),
        )
        .unwrap();
        for i in 0..3 {
            let ran = Arc::clone(&ran);
            sup.submit(
                format!("queued-{i}"),
                None,
                Arc::new(move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(JobSuccess {
                        json: "{}".to_string(),
                        cached: false,
                        fingerprint: fnv1a64(b"{}"),
                    })
                }),
            )
            .unwrap();
        }
        sup.cancel_all();
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let reports = sup.shutdown();
        assert_eq!(reports.len(), 4, "every submitted job reports");
        assert_eq!(ran.load(Ordering::SeqCst), 0, "queued work never ran");
        for r in &reports {
            assert!(
                matches!(r.result, Err(JobError::Cancelled { .. })),
                "{}: {:?}",
                r.name,
                r.result
            );
        }
    }

    #[test]
    fn backoff_is_capped_exponential_with_stable_jitter() {
        let cfg = SupervisorConfig {
            backoff_base_ms: 8,
            backoff_cap_ms: 32,
            seed: 3,
            ..SupervisorConfig::default()
        };
        // Deterministic: same inputs, same value.
        assert_eq!(cfg.backoff_ms(5, 2), cfg.backoff_ms(5, 2));
        // Base doubles then caps; jitter stays under base.
        for (attempt, base) in [(2u32, 8u64), (3, 16), (4, 32), (5, 32), (9, 32)] {
            let ms = cfg.backoff_ms(1, attempt);
            assert!(
                (base..base + 8).contains(&ms),
                "attempt {attempt}: {ms} not in [{base}, {})",
                base + 8
            );
        }
        // Different jobs decorrelate.
        assert_ne!(cfg.backoff_ms(1, 2), cfg.backoff_ms(2, 2));
    }
}
