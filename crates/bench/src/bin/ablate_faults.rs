//! Degradation sweep for the resilience layer: fault rate → completion
//! cycles, energy, and recovery retries on *both* fabrics.
//!
//! The electronic mesh runs the Table III transpose under transient flit
//! corruption (NACK/retransmit at the memory interface) plus occasional
//! link outages; the photonic machine runs a sequence of SCA writebacks
//! under BER-style word corruption (CRC + bounded link-layer retry, with
//! whole-pass SCA re-issue above it). Rate 0 is the golden baseline — by
//! construction it is bit-identical to a machine with no fault layer.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_faults [--quick]
//! ```

use bench::jobs::{run_ablate_faults, AblateFaultsSpec, FaultPoint};
use bench::{f, BenchError, Experiment};

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_faults");
    let quick = ex.quick();
    let mut spec = if quick {
        AblateFaultsSpec::quick()
    } else {
        AblateFaultsSpec::paper()
    };
    spec.threads = ex.threads();
    let (procs, gathers) = (spec.procs, spec.gathers);
    let interrupt = ex.interrupt();
    // The sweep itself lives in [`bench::jobs`] so the supervised paths
    // (`run_batch`, `psyncd`) produce byte-identical rows.
    let points: Vec<FaultPoint> = run_ablate_faults(&spec, interrupt.as_ref())
        .map_err(|e| BenchError::run("ablate_faults", e))?;

    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0e}", p.rate),
                p.mesh_cycles.to_string(),
                f(p.mesh_energy_uj, 3),
                p.mesh_retransmits.to_string(),
                p.mesh_link_down_events.to_string(),
                p.pscan_bus_slots.to_string(),
                p.pscan_retries.to_string(),
                p.total_retries.to_string(),
            ]
        })
        .collect();
    // Self-checks the CI smoke job relies on: no data loss anywhere in the
    // sweep, and the harshest rate visibly exercised the recovery paths.
    for p in &points {
        assert_eq!(
            p.mesh_dropped_elements, 0,
            "retry budget exhausted at rate {}",
            p.rate
        );
    }
    let last = points.last().expect("non-empty sweep");
    assert!(
        last.total_retries > 0,
        "top rate produced no retries — fault layer inert?"
    );
    if !quick {
        // The committed full-size sweep must show a monotone degradation
        // curve; the quick CI workload is too small to guarantee separation
        // at the low-rate end.
        for w in points.windows(2) {
            assert!(
                w[1].total_retries >= w[0].total_retries,
                "retries not monotone: rate {} -> {}",
                w[0].rate,
                w[1].rate
            );
        }
    }

    ex.table(
        &format!(
            "Degradation sweep: fault rate vs completion/energy/retries \
             (P = {procs} transpose; {gathers} × 64-slot SCA writebacks)"
        ),
        &[
            "rate",
            "mesh cycles",
            "mesh energy (uJ)",
            "retransmits",
            "link outages",
            "pscan bus slots",
            "pscan retries",
            "total retries",
        ],
        &cells,
    )
    .note(
        "rate 0 rows are the golden baseline: the fault layer at rate 0 is\n\
         bit-identical to no fault layer at all (enforced by tests).\n",
    )
    .rows(&points)
    .run()
}
