//! Degradation sweep for the resilience layer: fault rate → completion
//! cycles, energy, and recovery retries on *both* fabrics.
//!
//! The electronic mesh runs the Table III transpose under transient flit
//! corruption (NACK/retransmit at the memory interface) plus occasional
//! link outages; the photonic machine runs a sequence of SCA writebacks
//! under BER-style word corruption (CRC + bounded link-layer retry, with
//! whole-pass SCA re-issue above it). Rate 0 is the golden baseline — by
//! construction it is bit-identical to a machine with no fault layer.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_faults [--quick]
//! ```

use bench::{f, BenchError, Experiment};
use emesh::energy::OrionParams;
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use emesh::MeshFaultConfig;
use pscan::compiler::GatherSpec;
use pscan::faults::PscanFaultConfig;
use psync::machine::{Machine, MachineConfig};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    rate: f64,
    // Electronic mesh, Table III transpose.
    mesh_cycles: u64,
    mesh_energy_uj: f64,
    mesh_corrupted_flits: u64,
    mesh_retransmits: u64,
    mesh_link_down_events: u64,
    mesh_dropped_elements: u64,
    // Photonic machine, SCA writeback sequence.
    pscan_bus_slots: u64,
    pscan_retries: u64,
    pscan_corrupted_words: u64,
    pscan_giveups: u64,
    // Headline: recovery actions across both fabrics.
    total_retries: u64,
}

/// Word/flit error probabilities swept. Spacing is ≥ 2× so the retry counts
/// separate cleanly under the fixed seeds.
const RATES: &[f64] = &[0.0, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2];

fn mesh_point(
    rate: f64,
    procs: usize,
    row_len: usize,
    threads: usize,
    interrupt: Option<&sim_core::cancel::Interrupt>,
) -> Result<(u64, f64, emesh::MeshFaultStats), emesh::mesh::MeshError> {
    let cfg = MeshConfig::table3(procs, 1).with_threads(threads);
    let mut mesh = load_transpose(cfg, procs, row_len);
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    mesh.enable_faults(MeshFaultConfig {
        seed: 0xFA_u64,
        corrupt_rate: rate,
        link_down_rate: rate / 10.0,
        max_retransmits: 64,
        ..Default::default()
    });
    let res = mesh.run()?;
    let energy_uj = OrionParams::default().total_j(&res.energy, procs) * 1e6;
    Ok((res.cycles, energy_uj, res.faults.expect("layer attached")))
}

/// `gathers` SCA writebacks of one 64-slot burst each. Bursts are kept small
/// so even the harshest swept rate stays recoverable within the link-layer
/// retry budget (CRC granularity = burst).
fn machine_point(
    rate: f64,
    gathers: usize,
    interrupt: Option<&sim_core::cancel::Interrupt>,
) -> Result<(u64, u64, u64, u64), psync::machine::MachineError> {
    const NODES: usize = 8;
    let spec = GatherSpec::interleaved(NODES, 4, 2); // 64 slots
    let burst = spec.total_slots() as usize;
    let mut m = Machine::new(MachineConfig::paper_default(NODES, gathers * burst));
    if let Some(intr) = interrupt {
        m.set_interrupt(intr.clone());
    }
    m.enable_faults(PscanFaultConfig {
        seed: 0xFA_u64,
        word_error_rate: rate,
        max_retries: 256,
        ..Default::default()
    });
    for g in 0..gathers {
        let words: Vec<Vec<u64>> = (0..NODES)
            .map(|n| vec![(g * NODES + n) as u64; burst / NODES])
            .collect();
        let addrs: Vec<u64> = (0..burst as u64).map(|k| (g * burst) as u64 + k).collect();
        // Swept rates stay within the retry budget; only a cancellation
        // (or a genuinely exhausted budget) propagates.
        m.try_gather_to_memory(&format!("wb{g}"), &spec, &words, &addrs)?;
    }
    let bus_slots: u64 = m.phases.iter().map(|p| p.bus_slots).sum();
    let retries: u64 = m.phases.iter().map(|p| p.retries).sum();
    let stats = m.fault_stats().expect("layer attached");
    Ok((bus_slots, retries, stats.injected, stats.giveups))
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_faults");
    let threads = ex.threads();
    let quick = ex.quick();
    let (procs, row_len, gathers) = if quick { (16, 16, 4) } else { (64, 64, 16) };
    let interrupt = ex.interrupt();
    let points: Vec<Point> = RATES
        .par_iter()
        .map(|&rate| {
            eprintln!("rate = {rate:.0e}...");
            let (mesh_cycles, mesh_energy_uj, ms) =
                mesh_point(rate, procs, row_len, threads, interrupt.as_ref())
                    .map_err(|e| BenchError::run("ablate_faults", e))?;
            let (pscan_bus_slots, pscan_retries, pscan_corrupted_words, pscan_giveups) =
                machine_point(rate, gathers, interrupt.as_ref())
                    .map_err(|e| BenchError::run("ablate_faults", e))?;
            Ok(Point {
                rate,
                mesh_cycles,
                mesh_energy_uj,
                mesh_corrupted_flits: ms.corrupted_flits,
                mesh_retransmits: ms.retransmits,
                mesh_link_down_events: ms.link_down_events,
                mesh_dropped_elements: ms.dropped_elements,
                pscan_bus_slots,
                pscan_retries,
                pscan_corrupted_words,
                pscan_giveups,
                total_retries: ms.retransmits + pscan_retries,
            })
        })
        .collect::<Result<_, BenchError>>()?;

    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0e}", p.rate),
                p.mesh_cycles.to_string(),
                f(p.mesh_energy_uj, 3),
                p.mesh_retransmits.to_string(),
                p.mesh_link_down_events.to_string(),
                p.pscan_bus_slots.to_string(),
                p.pscan_retries.to_string(),
                p.total_retries.to_string(),
            ]
        })
        .collect();
    // Self-checks the CI smoke job relies on: no data loss anywhere in the
    // sweep, and the harshest rate visibly exercised the recovery paths.
    for p in &points {
        assert_eq!(
            p.mesh_dropped_elements, 0,
            "retry budget exhausted at rate {}",
            p.rate
        );
    }
    let last = points.last().expect("non-empty sweep");
    assert!(
        last.total_retries > 0,
        "top rate produced no retries — fault layer inert?"
    );
    if !quick {
        // The committed full-size sweep must show a monotone degradation
        // curve; the quick CI workload is too small to guarantee separation
        // at the low-rate end.
        for w in points.windows(2) {
            assert!(
                w[1].total_retries >= w[0].total_retries,
                "retries not monotone: rate {} -> {}",
                w[0].rate,
                w[1].rate
            );
        }
    }

    ex.table(
        &format!(
            "Degradation sweep: fault rate vs completion/energy/retries \
             (P = {procs} transpose; {gathers} × 64-slot SCA writebacks)"
        ),
        &[
            "rate",
            "mesh cycles",
            "mesh energy (uJ)",
            "retransmits",
            "link outages",
            "pscan bus slots",
            "pscan retries",
            "total retries",
        ],
        &cells,
    )
    .note(
        "rate 0 rows are the golden baseline: the fault layer at rate 0 is\n\
         bit-identical to no fault layer at all (enforced by tests).\n",
    )
    .rows(&points)
    .run()
}
