//! Ablation: CP granularity (DESIGN.md §7.1) — how finely a gather
//! interleaves sources trades communication-program size against nothing at
//! all on the bus (utilization stays 1.0), which is the PSCAN's superpower:
//! on a mesh, finer interleaving means more packets and more headers; on
//! the PSCAN it only means more CP entries in a node's instruction memory.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_cp_granularity
//! ```

use bench::{f, BenchError, Experiment};
use pscan::compiler::{CpCompiler, GatherSpec};
use pscan::network::{Pscan, PscanConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    block: usize,
    cp_entries_per_node: usize,
    cp_bits_per_node: usize,
    bus_utilization: f64,
    gather_slots: u64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_cp_granularity");
    let nodes = 64;
    let words_per_node = 256;
    let pscan = Pscan::new(PscanConfig::paper_default().with_nodes(nodes));

    let mut points = Vec::new();
    let mut cells = Vec::new();
    // Sweep interleave block size from 1 word (finest) to all words
    // (coarsest, = Model I blocked writeback).
    let mut block = 1usize;
    while block <= words_per_node {
        let turns = words_per_node / block;
        let spec = GatherSpec::interleaved(nodes, block, turns);
        let cps = CpCompiler.compile_gather(&spec, nodes);
        let data: Vec<Vec<u64>> = (0..nodes).map(|n| vec![n as u64; words_per_node]).collect();
        let out = pscan.gather(&spec, &data).expect("clean");
        let entries = cps[0].entries().len();
        points.push(Point {
            block,
            cp_entries_per_node: entries,
            cp_bits_per_node: cps[0].encoded_bits(),
            bus_utilization: out.utilization,
            gather_slots: spec.total_slots(),
        });
        cells.push(vec![
            block.to_string(),
            entries.to_string(),
            cps[0].encoded_bits().to_string(),
            f(out.utilization * 100.0, 1),
            spec.total_slots().to_string(),
        ]);
        block *= 4;
    }
    ex.table(
        &format!("Ablation: CP granularity ({nodes} nodes x {words_per_node} words)"),
        &[
            "interleave block",
            "CP entries/node",
            "CP bits/node",
            "bus util (%)",
            "slots",
        ],
        &cells,
    )
    .note(format!(
        "finest interleave costs {}x the CP storage of the coarsest — and zero bus cycles.",
        points.first().unwrap().cp_entries_per_node / points.last().unwrap().cp_entries_per_node
    ))
    .rows(&points)
    .run()
}
