//! Ablation: can a smart (FR-FCFS) memory controller rescue the mesh from
//! the scrambled transpose stream? The §V-C analysis charges the mesh `t_p`
//! per element for reordering; the conventional alternative is to let an
//! out-of-order memory controller hunt for row hits in a scheduling window.
//! This measures how far that gets against the SCA's perfectly ordered
//! stream.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_frfcfs
//! ```

use bench::{f, BenchError, Experiment};
use memory::{DramConfig, FrFcfsConfig, FrFcfsController};
use serde::Serialize;
use sim_core::rng::permutation;

#[derive(Serialize)]
struct Point {
    window: usize,
    scrambled_cycles: u64,
    hit_rate_pct: f64,
    vs_ordered: f64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_frfcfs");
    let n = 1usize << 18; // 256k elements
                          // The SCA's stream: linear order, in-order controller.
    let ordered = {
        let mut c = FrFcfsController::new(
            FrFcfsConfig {
                dram: DramConfig::default(),
                window: 1,
            },
            64,
        );
        c.run((0..n as u64).map(|i| (i, i)))
    };

    // The mesh's stream: transpose-scrambled arrival order.
    let scrambled: Vec<(u64, u64)> = permutation(n, 2026)
        .into_iter()
        .enumerate()
        .map(|(i, a)| (i as u64, a as u64))
        .collect();

    let mut points = Vec::new();
    let mut cells = Vec::new();
    for window in [1usize, 4, 16, 64, 256] {
        eprintln!("window {window}...");
        let mut c = FrFcfsController::new(
            FrFcfsConfig {
                dram: DramConfig::default(),
                window,
            },
            64,
        );
        let done = c.run(scrambled.clone());
        let hit = c.stats().hit_rate() * 100.0;
        points.push(Point {
            window,
            scrambled_cycles: done,
            hit_rate_pct: hit,
            vs_ordered: done as f64 / ordered as f64,
        });
        cells.push(vec![
            window.to_string(),
            done.to_string(),
            f(hit, 1),
            f(done as f64 / ordered as f64, 2),
        ]);
    }
    let best = points.last().unwrap();
    let summary = format!(
        "even a {}-deep window stays {:.2}x behind the ordered stream the SCA delivers for free.",
        best.window, best.vs_ordered
    );
    ex.table(
        &format!(
            "Ablation: FR-FCFS window vs scrambled transpose stream ({n} words; ordered = {ordered} cycles)"
        ),
        &["window", "scrambled cycles", "row hit %", "vs ordered stream"],
        &cells,
    )
    .note(summary)
    .rows(&points)
    .run()
}
