//! Ablation: routing policy (XY vs minimal adaptive) on the transpose
//! hotspot — DESIGN.md §7.2.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_routing [--quick]
//! ```

use bench::{f, BenchError, Experiment};
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::workloads::load_transpose;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    procs: usize,
    policy: String,
    cycles: u64,
    mean_latency: Option<f64>,
    p99_latency: Option<u64>,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_routing");
    let threads = ex.threads();
    let sizes: &[usize] = if ex.quick() { &[64] } else { &[64, 256] };
    let combos: Vec<(usize, &str, RoutingPolicy)> = sizes
        .iter()
        .flat_map(|&procs| {
            [
                (procs, "xy", RoutingPolicy::Xy),
                (procs, "adaptive", RoutingPolicy::MinimalAdaptive),
            ]
        })
        .collect();
    // Each (size, policy) cell is an independent simulation: run them all
    // in parallel; order is preserved so the table reads as before.
    let interrupt = ex.interrupt();
    let points: Vec<Point> = combos
        .into_par_iter()
        .map(|(procs, name, policy)| {
            eprintln!("P = {procs}, {name}...");
            let row_len = procs;
            let cfg = MeshConfig::table3(procs, 1)
                .with_policy(policy)
                .with_threads(threads);
            let mut mesh = load_transpose(cfg, procs, row_len);
            if let Some(intr) = &interrupt {
                mesh.set_interrupt(intr.clone());
            }
            mesh.track_latency(64, 4096);
            let res = mesh.run()?;
            let h = res.latency.expect("tracking on");
            Ok(Point {
                procs,
                policy: name.to_string(),
                cycles: res.cycles,
                mean_latency: h.mean(),
                p99_latency: h.quantile(0.99),
            })
        })
        .collect::<Result<_, emesh::mesh::MeshError>>()
        .map_err(|e| BenchError::run("ablate_routing", e))?;
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.procs.to_string(),
                p.policy.clone(),
                p.cycles.to_string(),
                f(p.mean_latency.unwrap_or(0.0), 0),
                p.p99_latency.unwrap_or(0).to_string(),
            ]
        })
        .collect();

    // Second workload: four-corner gather, where eastbound packets really
    // do choose between E and N/S by congestion. Same parallel sweep shape.
    let combos4: Vec<(usize, &str, RoutingPolicy)> = sizes
        .iter()
        .flat_map(|&procs| {
            [
                (procs, "xy", RoutingPolicy::Xy),
                (procs, "adaptive", RoutingPolicy::MinimalAdaptive),
            ]
        })
        .collect();
    let cells4: Vec<Vec<String>> = combos4
        .into_par_iter()
        .map(|(procs, name, policy)| {
            let cfg = MeshConfig::paper_default()
                .with_topology(emesh::topology::Topology::square(
                    procs,
                    emesh::topology::MemifPlacement::FourCorners,
                ))
                .with_policy(policy);
            let mut mesh = emesh::workloads::load_gather_energy(cfg, 64);
            if let Some(intr) = &interrupt {
                mesh.set_interrupt(intr.clone());
            }
            mesh.track_latency(64, 4096);
            let res = mesh.run()?;
            let h = res.latency.expect("tracking on");
            Ok(vec![
                procs.to_string(),
                name.to_string(),
                res.cycles.to_string(),
                f(h.mean().unwrap_or(0.0), 0),
                h.quantile(0.99).unwrap_or(0).to_string(),
            ])
        })
        .collect::<Result<_, emesh::mesh::MeshError>>()
        .map_err(|e| BenchError::run("ablate_routing", e))?;

    ex.table(
        "Ablation: routing policy on the transpose hotspot (t_p = 1)",
        &[
            "P",
            "policy",
            "completion (cycles)",
            "mean pkt latency",
            "p99 pkt latency",
        ],
        &cells,
    )
    .note(
        "single-corner traffic is all-west/north, where west-first adaptivity\n\
         degenerates to XY: the ejection port bounds completion either way.\n",
    )
    .table(
        "Ablation: routing policy, four-corner gather (adaptivity active)",
        &[
            "P",
            "policy",
            "completion (cycles)",
            "mean pkt latency",
            "p99 pkt latency",
        ],
        &cells4,
    )
    .rows(&points)
    .run()
}
