//! Ablation: routing policy (XY vs minimal adaptive) on the transpose
//! hotspot — DESIGN.md §7.2.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_routing [--quick]
//! ```

use bench::{f, quick_mode, render_table, write_json};
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::workloads::load_transpose;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    procs: usize,
    policy: String,
    cycles: u64,
    mean_latency: Option<f64>,
    p99_latency: Option<u64>,
}

fn main() {
    let sizes: &[usize] = if quick_mode() { &[64] } else { &[64, 256] };
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for &procs in sizes {
        let row_len = procs;
        for (name, policy) in [
            ("xy", RoutingPolicy::Xy),
            ("adaptive", RoutingPolicy::MinimalAdaptive),
        ] {
            eprintln!("P = {procs}, {name}...");
            let mut cfg = MeshConfig::table3(procs, 1);
            cfg.policy = policy;
            let mut mesh = load_transpose(cfg, procs, row_len);
            mesh.track_latency(64, 4096);
            let res = mesh.run().expect("deadlock");
            let h = res.latency.expect("tracking on");
            points.push(Point {
                procs,
                policy: name.to_string(),
                cycles: res.cycles,
                mean_latency: h.mean(),
                p99_latency: h.quantile(0.99),
            });
            cells.push(vec![
                procs.to_string(),
                name.to_string(),
                res.cycles.to_string(),
                f(h.mean().unwrap_or(0.0), 0),
                h.quantile(0.99).unwrap_or(0).to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation: routing policy on the transpose hotspot (t_p = 1)",
            &["P", "policy", "completion (cycles)", "mean pkt latency", "p99 pkt latency"],
            &cells
        )
    );
    println!("single-corner traffic is all-west/north, where west-first adaptivity");
    println!("degenerates to XY: the ejection port bounds completion either way.\n");

    // Second workload: four-corner gather, where eastbound packets really
    // do choose between E and N/S by congestion.
    let mut cells4 = Vec::new();
    for &procs in sizes {
        for (name, policy) in [
            ("xy", RoutingPolicy::Xy),
            ("adaptive", RoutingPolicy::MinimalAdaptive),
        ] {
            let cfg = emesh::mesh::MeshConfig {
                topology: emesh::topology::Topology::square(
                    procs,
                    emesh::topology::MemifPlacement::FourCorners,
                ),
                t_r: 1,
                policy,
                memif: Default::default(),
                buffer_depth: 2,
                max_cycles: 1 << 32,
            };
            let mut mesh = emesh::workloads::load_gather_energy(cfg, 64);
            mesh.track_latency(64, 4096);
            let res = mesh.run().expect("deadlock");
            let h = res.latency.expect("tracking on");
            cells4.push(vec![
                procs.to_string(),
                name.to_string(),
                res.cycles.to_string(),
                f(h.mean().unwrap_or(0.0), 0),
                h.quantile(0.99).unwrap_or(0).to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            "Ablation: routing policy, four-corner gather (adaptivity active)",
            &["P", "policy", "completion (cycles)", "mean pkt latency", "p99 pkt latency"],
            &cells4
        )
    );
    write_json("ablate_routing", &points);
}
