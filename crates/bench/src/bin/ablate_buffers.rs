//! Ablation: does a beefier mesh escape the Table III port bound? Sweep
//! input-buffer depth well past the paper's 2 flits and watch the transpose
//! completion barely move — the bottleneck is the single reorder-staged
//! ejection port, not buffering.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_buffers [--quick]
//! ```

use analytic::table3::Table3Params;
use bench::{f, BenchError, Experiment};
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    buffer_depth: usize,
    mesh_cycles: u64,
    multiplier: f64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_buffers");
    let threads = ex.threads();
    let (procs, row_len) = if ex.quick() { (64, 64) } else { (256, 256) };
    let pscan = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    }
    .pscan_cycles();

    // Every depth is an independent simulation: sweep in parallel.
    let interrupt = ex.interrupt();
    let points: Vec<Point> = [2usize, 4, 8, 16, 64]
        .into_par_iter()
        .map(|depth| {
            eprintln!("buffer depth {depth}...");
            let cfg = MeshConfig::table3(procs, 1)
                .with_buffers(depth)
                .with_threads(threads);
            let mut mesh = load_transpose(cfg, procs, row_len);
            if let Some(intr) = &interrupt {
                mesh.set_interrupt(intr.clone());
            }
            mesh.run().map(|r| r.cycles).map(|cycles| Point {
                buffer_depth: depth,
                mesh_cycles: cycles,
                multiplier: cycles as f64 / pscan as f64,
            })
        })
        .collect::<Result<_, _>>()
        .map_err(|e| BenchError::run("ablate_buffers", e))?;
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.buffer_depth.to_string(),
                p.mesh_cycles.to_string(),
                f(p.multiplier, 2),
            ]
        })
        .collect();
    let first = points.first().unwrap().mesh_cycles as f64;
    let last = points.last().unwrap().mesh_cycles as f64;
    ex.table(
        &format!(
            "Ablation: buffer depth, transpose P = {procs}, N = {row_len}, t_p = 1 (PSCAN = {pscan})"
        ),
        &["buffer depth", "mesh cycles", "multiplier"],
        &cells,
    )
    .note(format!(
        "32x deeper buffers buy {:.1}% — the ejection port, not buffering, is the wall.",
        (first - last) / first * 100.0
    ))
    .rows(&points)
    .run()
}
