//! Simulator-performance harness: wall-clock throughput of the emesh
//! event engine on the fixed Table III configuration.
//!
//! Runs the 2²⁰-element transpose (P = 1024 processors, N = 1024 row
//! length, `t_p = 1`, minimal adaptive) and reports simulated cycles,
//! wall-time, and flit-moves per second (router traversals / wall-time —
//! the natural unit of scheduler work). Each policy is swept across
//! worker-thread counts of the deterministic epoch-parallel scheduler
//! (DESIGN.md §11); the harness asserts the threaded runs reproduce the
//! sequential cycle count exactly before reporting their speedups.
//! Results go to `results/perf_mesh.json` so speedups across scheduler
//! changes are tracked in-repo.
//!
//! `--quick` drops to P = N = 256 for smoke runs; `--threads <n>` adds
//! `n` to the sweep.

use bench::jobs::perf_mesh_point;
use bench::{f, BenchError, Experiment};
use emesh::mesh::{MeshError, RoutingPolicy};
use serde::Serialize;
use sim_core::cancel::Interrupt;

/// Seed-scheduler wall-times for the full 2²⁰ transpose (global
/// `BinaryHeap` wakeups + `VecDeque` buffers, commit f071ec2), measured
/// 2026-08-05 on this repo's reference machine, release build. Quick-mode
/// runs have no recorded baseline.
const SEED_WALL_S: [(&str, f64); 2] = [("MinimalAdaptive", 18.98), ("Xy", 18.40)];

#[derive(Serialize)]
struct PerfRow {
    procs: usize,
    row_len: usize,
    elements: usize,
    policy: String,
    t_p: u64,
    /// Worker threads of the epoch-parallel scheduler (1 = sequential).
    threads: usize,
    cycles: u64,
    wall_s: f64,
    flit_moves: u64,
    flit_moves_per_s: f64,
    cycles_per_s: f64,
    /// Recorded seed-scheduler wall-time for this configuration, if any.
    seed_wall_s: Option<f64>,
    /// `seed_wall_s / wall_s` — the scheduler-rework speedup.
    speedup_vs_seed: Option<f64>,
    /// Wall-time of this policy's 1-thread run divided by this run's —
    /// the parallel-scheduler speedup (1.0 for the 1-thread row).
    speedup_vs_1t: Option<f64>,
}

fn run_one(
    procs: usize,
    row_len: usize,
    policy: RoutingPolicy,
    t_p: u64,
    threads: usize,
    interrupt: Option<&Interrupt>,
) -> Result<PerfRow, MeshError> {
    // The simulation core is shared with the `perf_mesh` job family in
    // [`bench::jobs`]; this bin adds the wall-clock-derived columns.
    let point = perf_mesh_point(procs, row_len, policy, t_p, threads, interrupt)?;
    let (cycles, flit_moves, wall_s) = (point.cycles, point.flit_moves, point.wall_s);
    let policy = format!("{policy:?}");
    // The seed baseline is a property of the configuration, not the thread
    // count (the seed scheduler was sequential-only), so threaded rows get
    // it too — their speedup_vs_seed is the end-to-end win of the rework
    // *and* the parallel scheduler together.
    let seed_wall_s = if (procs, row_len) == (1024, 1024) {
        SEED_WALL_S
            .iter()
            .find(|(p, _)| *p == policy)
            .map(|&(_, s)| s)
    } else {
        None
    };
    Ok(PerfRow {
        procs,
        row_len,
        elements: procs * row_len,
        policy,
        t_p,
        threads,
        cycles,
        wall_s,
        flit_moves,
        flit_moves_per_s: flit_moves as f64 / wall_s,
        cycles_per_s: cycles as f64 / wall_s,
        seed_wall_s,
        speedup_vs_seed: seed_wall_s.map(|s| s / wall_s),
        speedup_vs_1t: None,
    })
}

/// Thread counts to sweep: always 1 (the baseline), the 2/4 ladder the CI
/// perf gate keys on, and the `--threads` request.
fn thread_sweep(quick: bool, requested: usize) -> Vec<usize> {
    let mut sweep = if quick {
        vec![1, 2, requested.max(2)]
    } else {
        vec![1, 2, 4, requested]
    };
    sweep.sort_unstable();
    sweep.dedup();
    sweep
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("perf_mesh");
    let (procs, row_len) = if ex.quick() { (256, 256) } else { (1024, 1024) };
    let sweep = thread_sweep(ex.quick(), ex.threads());
    let interrupt = ex.interrupt();

    let mut rows: Vec<PerfRow> = Vec::new();
    for policy in [RoutingPolicy::MinimalAdaptive, RoutingPolicy::Xy] {
        let mut base: Option<(u64, f64)> = None;
        for &threads in &sweep {
            eprintln!(
                "perf_mesh: {procs}x{row_len} transpose, {policy:?}, t_p=1, {threads} thread(s) ..."
            );
            let mut row = run_one(procs, row_len, policy, 1, threads, interrupt.as_ref())
                .map_err(|e| BenchError::run("perf_mesh", e))?;
            match base {
                None => base = Some((row.cycles, row.wall_s)),
                Some((cycles_1t, wall_1t)) => {
                    assert_eq!(
                        row.cycles, cycles_1t,
                        "{policy:?}: {threads}-thread run diverged from sequential"
                    );
                    row.speedup_vs_1t = Some(wall_1t / row.wall_s);
                }
            }
            if row.threads == 1 {
                row.speedup_vs_1t = Some(1.0);
            }
            if let Some(s) = row.speedup_vs_1t.filter(|&s| row.threads > 1 && s < 1.0) {
                eprintln!(
                    "perf_mesh: WARNING: {policy:?} at {threads} threads ran {s:.2}x \
                     vs the 1-thread scheduler — parallel execution is a SLOWDOWN \
                     on this machine ({} cores available)",
                    std::thread::available_parallelism().map_or(0, |n| n.get()),
                );
            }
            rows.push(row);
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.procs, r.row_len),
                r.policy.clone(),
                r.threads.to_string(),
                r.cycles.to_string(),
                f(r.wall_s, 2),
                f(r.flit_moves_per_s / 1e6, 2),
                r.speedup_vs_1t
                    .map_or("-".to_string(), |s| format!("{s:.2}x")),
                r.speedup_vs_seed
                    .map_or("-".to_string(), |s| format!("{s:.2}x")),
            ]
        })
        .collect();
    ex.table(
        "Simulator performance (Table III transpose)",
        &[
            "transpose",
            "policy",
            "thr",
            "cycles",
            "wall s",
            "Mflit/s",
            "vs 1t",
            "vs seed",
        ],
        &table,
    )
    .rows(&rows)
    .run()
}
