//! Collective-traffic harness: all-to-all / all-gather / all-reduce on
//! both fabrics across square, rectangular, and torus geometries.
//!
//! ```text
//! cargo run --release -p bench --bin collectives [-- --quick]
//! ```
//!
//! Each mesh geometry gets all three collectives (bulk-synchronous ring
//! rounds, DESIGN.md §16); the photonic SCA runs each collective once per
//! distinct processor count — the flat bus has no geometry, so a 16×16
//! mesh and a 32×8 mesh share one SCA machine. Rows carry the fabric's
//! native sequential unit in `cycles` (mesh cycles / SCA bus slots), a
//! determinism fingerprint the goldens pin byte-for-byte, and volatile
//! wall-clock throughput (`cycles_per_s`, scrubbed from goldens).

use std::collections::BTreeSet;
use std::time::Instant;

use bench::jobs::{collective_mesh_row, collective_sca_row, CollectivesSpec};
use bench::{f, BenchError, Experiment};
use serde::Serialize;
use sim_core::collective::Collective;

#[derive(Serialize)]
struct Row {
    /// `collective:<op>[<fabric>,<geometry>]`, the perf-gate key.
    policy: String,
    threads: usize,
    /// Participants in the collective.
    participants: u64,
    /// Payload words per node per block.
    words: usize,
    /// Mesh completion cycles or SCA bus slots (deterministic).
    cycles: u64,
    /// Golden-determinism fingerprint of the full run observables.
    fingerprint: u64,
    /// Wall-clock seconds (volatile).
    wall_s: f64,
    /// Simulated cycles per wall second (volatile).
    cycles_per_s: f64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("collectives");
    let threads = ex.threads();
    let (geoms, words) = if ex.quick() {
        (vec![(4, 4, false), (8, 2, false), (4, 4, true)], 4)
    } else {
        (vec![(16, 16, false), (32, 8, false), (16, 16, true)], 64)
    };

    let mut rows: Vec<Row> = Vec::new();
    let mut sca_done: BTreeSet<usize> = BTreeSet::new();
    for &(width, height, torus) in &geoms {
        let spec = CollectivesSpec {
            width,
            height,
            torus,
            words,
            threads,
        };
        let geom = spec.topology().label();
        for collective in Collective::ALL {
            eprintln!("collectives: {} on mesh {geom} ...", collective.label());
            let t0 = Instant::now();
            let mesh = collective_mesh_row(&spec, collective, None)
                .map_err(|e| BenchError::run("collectives", e))?;
            let wall_s = t0.elapsed().as_secs_f64();
            rows.push(Row {
                policy: format!("collective:{}[mesh,{geom}]", collective.label()),
                threads,
                participants: mesh.participants,
                words,
                cycles: mesh.cycles,
                fingerprint: mesh.fingerprint,
                wall_s,
                cycles_per_s: mesh.cycles as f64 / wall_s,
            });
        }
        let procs = width * height;
        if sca_done.insert(procs) {
            for collective in Collective::ALL {
                eprintln!("collectives: {} on sca p{procs} ...", collective.label());
                let t0 = Instant::now();
                let (sca, _) = collective_sca_row(&spec, collective, false)
                    .map_err(|e| BenchError::run("collectives", e))?;
                let wall_s = t0.elapsed().as_secs_f64();
                rows.push(Row {
                    policy: format!("collective:{}[sca,{}]", collective.label(), sca.geometry),
                    threads,
                    participants: sca.participants,
                    words,
                    cycles: sca.cycles,
                    fingerprint: sca.fingerprint,
                    wall_s,
                    cycles_per_s: sca.cycles as f64 / wall_s,
                });
            }
        }
    }

    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.participants.to_string(),
                r.words.to_string(),
                r.cycles.to_string(),
                format!("{:016x}", r.fingerprint),
                f(r.wall_s, 3),
            ]
        })
        .collect();
    ex.table(
        "Collectives: mesh cycles vs SCA bus slots",
        &[
            "policy",
            "parts",
            "words",
            "cycles",
            "fingerprint",
            "wall (s)",
        ],
        &cells,
    )
    .note(
        "Mesh collectives run as bulk-synchronous ring rounds (P-1 shift permutations);\n\
         tori recover from VC-less wrap-ring deadlocks by deterministic round bisection.\n\
         The SCA routes every collective through head-node DRAM in 2 passes (5 for\n\
         all-reduce, which also bills on-node reduction compute).",
    )
    .rows(&rows)
    .run()
}
