//! `psyncd` — the experiment service daemon.
//!
//! Listens on a Unix domain socket for newline-delimited JSON requests
//! (wire schema: DESIGN.md §14), routes experiment jobs through the
//! supervised worker pool, and keeps the exact result cache warm across
//! batches. SIGTERM drains gracefully: in-flight jobs finish, their
//! results are flushed to the submitting connections, and the process
//! exits 0.
//!
//! ```text
//! psyncd [--socket PATH] [--workers N] [--queue-cap N]
//!        [--cache-bytes N] [--max-attempts N]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use bench::service::daemon::{install_sigterm, serve, ServiceConfig};

const USAGE: &str = "usage: psyncd [--socket PATH] [--workers N] [--queue-cap N] \
                     [--cache-bytes N] [--max-attempts N]";

fn parse_args() -> Result<ServiceConfig, String> {
    let mut cfg = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--socket" => cfg.socket = PathBuf::from(value("--socket")?),
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be >= 1".to_string());
                }
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
                if cfg.queue_cap == 0 {
                    return Err("--queue-cap must be >= 1".to_string());
                }
            }
            "--cache-bytes" => {
                cfg.cache_budget_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            "--max-attempts" => {
                cfg.max_attempts = value("--max-attempts")?
                    .parse()
                    .map_err(|e| format!("--max-attempts: {e}"))?;
                if cfg.max_attempts == 0 {
                    return Err("--max-attempts must be >= 1".to_string());
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("psyncd: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    install_sigterm();
    match serve(cfg, Arc::new(AtomicBool::new(false))) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("psyncd: {e}");
            ExitCode::FAILURE
        }
    }
}
