//! Regenerates **Fig. 5** — energy per bit, electronic mesh vs PSCAN.
//!
//! Both networks carry the same gather (every node's data to memory) with
//! 320 Gb/s to memory: the mesh through its four 80 Gb/s corner interfaces
//! (energy measured by cycle-level simulation + ORION-style constants), the
//! PSCAN through one 32 λ × 10 Gb/s bus (photonic device energy model).
//! The paper reports "at least a 5.2× improvement for the networks
//! simulated".
//!
//! ```text
//! cargo run --release -p bench --bin fig5_energy [--quick]
//! ```

use bench::{f, BenchError, Experiment};
use emesh::energy::OrionParams;
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::workloads::load_gather_energy;
use photonics::energy::PhotonicEnergyModel;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    nodes: usize,
    mesh_pj_per_bit: f64,
    pscan_pj_per_bit: f64,
    ratio: f64,
}

fn mesh_energy_pj_per_bit(
    nodes: usize,
    words_per_node: usize,
    threads: usize,
    interrupt: Option<&sim_core::cancel::Interrupt>,
) -> Result<f64, emesh::mesh::MeshError> {
    let cfg = MeshConfig::paper_default()
        .with_topology(Topology::square(nodes, MemifPlacement::FourCorners))
        .with_policy(RoutingPolicy::Xy)
        .with_max_cycles(1 << 34)
        .with_threads(threads);
    let mut mesh = load_gather_energy(cfg, words_per_node);
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    let res = mesh.run()?;
    let payload_bits = (nodes * words_per_node) as u64 * 64;
    Ok(OrionParams::default().pj_per_payload_bit(&res.energy, nodes, payload_bits))
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("fig5_energy");
    let threads = ex.threads();
    let quick = ex.quick();
    let sizes: &[usize] = if quick {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let words = if quick { 64 } else { 256 };

    let photonic = PhotonicEnergyModel::default();
    let mut points = Vec::new();
    let mut cells = Vec::new();
    let interrupt = ex.interrupt();
    for &n in sizes {
        eprintln!("simulating {n}-node mesh gather ({words} words/node)...");
        let mesh = mesh_energy_pj_per_bit(n, words, threads, interrupt.as_ref())
            .map_err(|e| BenchError::run("fig5_energy", e))?;
        let pscan = photonic.sca_pj_per_bit(20.0, n);
        let ratio = mesh / pscan;
        points.push(Point {
            nodes: n,
            mesh_pj_per_bit: mesh,
            pscan_pj_per_bit: pscan,
            ratio,
        });
        cells.push(vec![n.to_string(), f(mesh, 2), f(pscan, 3), f(ratio, 1)]);
    }
    let min_ratio = points.iter().map(|p| p.ratio).fold(f64::INFINITY, f64::min);
    ex.table(
        "Fig. 5: network energy per bit, SCA-equivalent gather (2 cm x 2 cm die)",
        &["nodes", "mesh (pJ/bit)", "PSCAN (pJ/bit)", "mesh/PSCAN"],
        &cells,
    )
    .note(format!(
        "minimum PSCAN advantage: {min_ratio:.1}x (paper: at least 5.2x)"
    ))
    .rows(&points)
    .run()
}
