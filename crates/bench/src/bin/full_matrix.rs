//! Multi-fidelity sweep: the complete 21-row ablation matrix, answered
//! per-row at the cheapest validated fidelity (DESIGN.md §15).
//!
//! Each row's operating point is looked up in the machine-checked
//! validation registry (`ci/validation_envelopes.json`, regenerated from
//! `bench::crosscheck::envelope_catalog` with `--write-envelopes`). Under
//! the default `auto` policy a row inside a validated region is answered
//! from the closed form with the conformance envelope attached as its
//! error bar; rows outside every region — unvalidated geometry, an
//! unvalidated routing policy, a nonzero fault rate — fall back to the
//! cycle-accurate fabric. The matrix composition guarantees at least one
//! fallback on every run, so the slow path can never silently rot.
//!
//! With the reference pass enabled (the default at `--quick` scale), every
//! analytic answer is re-measured on its fabric and the harness asserts:
//!
//! * each analytic row lands inside its validated envelope, and
//! * the fast path is ≥ 100× cheaper than the simulation it displaced.
//!
//! ```text
//! cargo run --release -p bench --bin full_matrix -- --quick
//! cargo run --release -p bench --bin full_matrix -- --fidelity cycle_accurate
//! cargo run --release -p bench --bin full_matrix -- --write-envelopes
//! ```

use bench::fidelity::{ValidationRegistry, REGISTRY_RELATIVE_PATH};
use bench::jobs::{run_full_matrix, FullMatrixResult, FullMatrixSpec, FullMatrixTiming};
use bench::{f, BenchError, Experiment};
use serde::Serialize;

/// Bin-specific flags plus the shared harness surface.
const USAGE: &str = "usage: full_matrix [--quick] [--fidelity <policy>] \
                     [--reference|--no-reference] [--write-envelopes] \
                     [--no-json] [--threads <n>] [--trace-out <path>] \
                     [--metrics-out <path>] [--timeout-s <secs>]";

/// The floor the fast path must clear against the simulation it displaced.
const MIN_FASTPATH_SPEEDUP: f64 = 100.0;

/// Wall-clock accounting, serialized beside the matrix rows. Field names
/// carry the `wall`/`speedup` markers `scripts/goldens_freshness.py`
/// scrubs, so goldens stay machine-independent.
#[derive(Debug, Clone, Serialize)]
struct TimingReport {
    selected_wall_s: f64,
    analytic_wall_s: f64,
    reference_wall_s: f64,
    reference_analytic_wall_s: f64,
    fastpath_speedup: f64,
    matrix_speedup: f64,
}

/// The full result document: the deterministic matrix plus the timing.
#[derive(Debug, Clone, Serialize)]
struct MatrixReport {
    matrix: FullMatrixResult,
    timing: TimingReport,
}

/// Write the builtin registry to `ci/validation_envelopes.json` (workspace
/// root, found the same way the committed copy is read).
fn write_envelopes() -> Result<(), BenchError> {
    let path = if std::path::Path::new("ci").is_dir() {
        REGISTRY_RELATIVE_PATH.to_string()
    } else {
        format!(
            "{}/../../{REGISTRY_RELATIVE_PATH}",
            env!("CARGO_MANIFEST_DIR")
        )
    };
    std::fs::write(&path, ValidationRegistry::builtin().to_json_pretty()).map_err(|source| {
        BenchError::Io {
            path: path.clone().into(),
            source,
        }
    })?;
    eprintln!("wrote {path}");
    Ok(())
}

fn timing_report(timing: &FullMatrixTiming, result: &FullMatrixResult) -> TimingReport {
    // Guard the ratios: a pass that ran nothing (or a clock too coarse to
    // see it) must not divide by zero.
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    TimingReport {
        selected_wall_s: timing.selected_wall_s,
        analytic_wall_s: timing.analytic_wall_s,
        reference_wall_s: timing.reference_wall_s,
        reference_analytic_wall_s: timing.reference_analytic_wall_s,
        fastpath_speedup: if result.reference {
            ratio(timing.reference_analytic_wall_s, timing.analytic_wall_s)
        } else {
            0.0
        },
        matrix_speedup: if result.reference {
            ratio(timing.reference_wall_s, timing.selected_wall_s)
        } else {
            0.0
        },
    }
}

fn main() -> Result<(), BenchError> {
    // Bin-specific flags are peeled off before the shared harness parse.
    let mut reference: Option<bool> = None;
    let mut envelopes_only = false;
    let mut rest = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--reference" => reference = Some(true),
            "--no-reference" => reference = Some(false),
            "--write-envelopes" => envelopes_only = true,
            _ => rest.push(a),
        }
    }
    let ex = Experiment::with_args("full_matrix", rest).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    if envelopes_only {
        return write_envelopes();
    }

    // The committed registry must match the envelope catalog compiled into
    // this binary — the same byte-for-byte check the library tests make.
    match ValidationRegistry::load_committed() {
        Ok(_) => {}
        Err(e) => {
            eprintln!(
                "error: committed validation registry unreadable ({e}); \
                 regenerate with `cargo run -p bench --bin full_matrix -- --write-envelopes`"
            );
            std::process::exit(1);
        }
    }

    let quick = ex.quick();
    let spec = FullMatrixSpec {
        scale: if quick { "quick" } else { "paper" }.to_string(),
        fidelity: ex.fidelity().wire(),
        // Reference defaults: measured per-PR at quick scale, opt-in at
        // paper scale (the reference is the expensive part by design).
        reference: reference.unwrap_or(quick),
    };
    let interrupt = ex.interrupt();
    let (result, timing) = run_full_matrix(&spec, interrupt.as_ref(), Some(ex.registry()))
        .map_err(|e| BenchError::run("full_matrix", e))?;
    let timing = timing_report(&timing, &result);

    // The matrix's own guarantee: rows 19–21 sit outside every validated
    // region, so any registry-consulting policy exercises the fallback.
    if spec.fidelity != "cycle_accurate" {
        assert!(
            result.cycle_accurate_rows >= 1,
            "no cycle-accurate fallback row — the registry accepted every \
             point, so the fallback path went unexercised"
        );
    }
    if result.reference {
        let misses: Vec<String> = result
            .rows
            .iter()
            .filter(|r| r.within_envelope == Some(false))
            .map(|r| {
                format!(
                    "row {} {} [{}]: rel err {:.3e} exceeds envelope {:.0e}",
                    r.id,
                    r.family,
                    r.point,
                    r.reference_rel_err.unwrap_or(f64::NAN),
                    r.envelope_rel_err.unwrap_or(f64::NAN),
                )
            })
            .collect();
        assert!(
            misses.is_empty(),
            "analytic fast path diverged from the cycle-accurate reference:\n  {}",
            misses.join("\n  ")
        );
        if result.analytic_rows > 0 {
            assert!(
                timing.fastpath_speedup >= MIN_FASTPATH_SPEEDUP,
                "fast path too slow: {:.1}x < {MIN_FASTPATH_SPEEDUP}x \
                 (analytic {:.3e}s vs displaced simulation {:.3e}s)",
                timing.fastpath_speedup,
                timing.analytic_wall_s,
                timing.reference_analytic_wall_s,
            );
        }
    }

    let table: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                format!("{} [{}]", r.family, r.point),
                r.fidelity.clone(),
                format!("{:.6e}", r.value),
                r.unit.clone(),
                r.envelope_rel_err
                    .map(|e| format!("{e:.0e}"))
                    .unwrap_or_else(|| "-".to_string()),
                r.reference_rel_err
                    .map(|e| format!("{e:.1e}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();

    let mut notes = vec![format!(
        "{} rows: {} analytic, {} cycle-accurate (policy {})",
        result.rows.len(),
        result.analytic_rows,
        result.cycle_accurate_rows,
        spec.fidelity,
    )];
    if result.reference {
        notes.push(format!(
            "reference pass: every analytic row in-envelope; fast path {}x \
             vs displaced simulation, matrix {}x end-to-end",
            f(timing.fastpath_speedup, 0),
            f(timing.matrix_speedup, 0),
        ));
    }
    let report = MatrixReport {
        matrix: result,
        timing,
    };
    let mut ex = ex.table(
        "Full-scale matrix (multi-fidelity, validated analytic fast path)",
        &[
            "row", "point", "fidelity", "value", "unit", "envelope", "ref err",
        ],
        &table,
    );
    for n in notes {
        ex = ex.note(n);
    }
    ex.rows(&report).run()
}
