//! Ablation: Fig. 13 re-run under Model II delivery — the paper's own
//! conjecture, "It is likely that the performance would improve further
//! under P-sync if a Model II delivery mode was used."
//!
//! ```text
//! cargo run --release -p bench --bin ablate_fig13_model2
//! ```

use bench::{f, BenchError, Experiment};
use llmore::phases::{phase_breakdown_with, DeliveryModel};
use llmore::sweep::paper_core_counts;
use llmore::{ArchKind, SystemParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    cores: u64,
    psync_model1_gflops: f64,
    psync_model2_gflops: f64,
    mesh_model1_gflops: f64,
    mesh_model2_gflops: f64,
}

fn gflops(kind: ArchKind, s: &SystemParams, p: u64, m: DeliveryModel) -> f64 {
    let t = phase_breakdown_with(kind, s, p, m).total();
    (2 * s.mults_per_pass()) as f64 / t / 1e9
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_fig13_model2");
    let s = SystemParams::default();
    let m2 = DeliveryModel::ModelII { k: 8 };
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for p in paper_core_counts() {
        let row = Point {
            cores: p,
            psync_model1_gflops: gflops(ArchKind::Psync, &s, p, DeliveryModel::ModelI),
            psync_model2_gflops: gflops(ArchKind::Psync, &s, p, m2),
            mesh_model1_gflops: gflops(ArchKind::ElectronicMesh, &s, p, DeliveryModel::ModelI),
            mesh_model2_gflops: gflops(ArchKind::ElectronicMesh, &s, p, m2),
        };
        cells.push(vec![
            p.to_string(),
            f(row.psync_model1_gflops, 2),
            f(row.psync_model2_gflops, 2),
            f(row.psync_model2_gflops / row.psync_model1_gflops, 2),
            f(row.mesh_model1_gflops, 2),
            f(row.mesh_model2_gflops, 2),
        ]);
        points.push(row);
    }
    let best = points
        .iter()
        .map(|r| r.psync_model2_gflops / r.psync_model1_gflops)
        .fold(0.0f64, f64::max);
    ex.table(
        "Ablation: Fig. 13 under Model II delivery (k = 8)",
        &[
            "cores",
            "P-sync MI",
            "P-sync MII",
            "gain",
            "mesh MI",
            "mesh MII",
        ],
        &cells,
    )
    .note(format!(
        "largest P-sync Model II gain: {best:.2}x — confirming the paper's conjecture."
    ))
    .rows(&points)
    .run()
}
