//! Regenerates **Fig. 13** — simulated 2-D FFT performance (GFLOPS, paper
//! multiply-costing) vs core count for the ideal machine, P-sync, and the
//! electronic mesh, under Model-I delivery and equalized bandwidth.
//!
//! ```text
//! cargo run --release -p bench --bin fig13_scaling
//! ```

use bench::{f, BenchError, Experiment};
use llmore::sweep::{paper_core_counts, sweep_cores};
use llmore::SystemParams;

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("fig13");
    let pts = sweep_cores(&SystemParams::default(), &paper_core_counts());
    let cells: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.cores.to_string(),
                f(p.ideal_gflops, 2),
                f(p.psync_gflops, 2),
                f(p.mesh_gflops, 2),
                f(p.psync_gflops / p.mesh_gflops, 2),
            ]
        })
        .collect();
    let mesh_peak = pts
        .iter()
        .max_by(|a, b| a.mesh_gflops.partial_cmp(&b.mesh_gflops).unwrap())
        .unwrap();
    ex.table(
        "Fig. 13: 2-D FFT performance vs cores (1024x1024, 4 memory controllers)",
        &[
            "cores",
            "ideal GFLOPS",
            "P-sync GFLOPS",
            "mesh GFLOPS",
            "P-sync/mesh",
        ],
        &cells,
    )
    .note(format!(
        "mesh peaks at {} cores; P-sync/ideal at 4096 cores = {:.3}",
        mesh_peak.cores,
        pts.last().unwrap().psync_gflops / pts.last().unwrap().ideal_gflops
    ))
    .rows(&pts)
    .run()
}
