//! Regenerates **Fig. 11** — FFT compute efficiency vs k for P-sync and
//! the electronic mesh, plus the ideal (zero-latency) bound.
//!
//! ```text
//! cargo run --release -p bench --bin fig11_efficiency
//! ```

use analytic::fig11::fig11_curves;
use bench::{f, BenchError, Experiment};

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("fig11");
    let pts = fig11_curves();
    let cells: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                f(p.ideal_pct, 2),
                f(p.psync_pct, 2),
                f(p.mesh_pct, 2),
            ]
        })
        .collect();
    let mesh_peak = pts
        .iter()
        .max_by(|a, b| a.mesh_pct.partial_cmp(&b.mesh_pct).unwrap())
        .unwrap();
    let last = pts.last().unwrap();
    ex.table(
        "Fig. 11: FFT compute efficiency vs k (1024-pt rows, P = 256)",
        &["k", "ideal (%)", "P-sync (%)", "mesh (%)"],
        &cells,
    )
    .note(format!(
        "mesh peaks at k = {} ({:.1}%); P-sync reaches {:.1}% at k = {}",
        mesh_peak.k, mesh_peak.mesh_pct, last.psync_pct, last.k
    ))
    .rows(&pts)
    .run()
}
