//! Cross-check: the Fig. 13 story re-derived from the *event-level*
//! simulators instead of the LLMORE phase models — the P-sync machine runs
//! the real distributed FFT through the photonic bus; the mesh runs the
//! real transpose through the wormhole fabric. The ratio between them
//! should agree in shape with the `llmore` sweep (which is what regenerates
//! the figure at full scale).
//!
//! ```text
//! cargo run --release -p bench --bin crosscheck_fig13 [--quick]
//! ```

use bench::{f, BenchError, Experiment};
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use fft::fft2d::Matrix;
use fft::Complex64;
use llmore::{simulate_fft2d, ArchKind, SystemParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    procs: usize,
    machine_reorg_ratio: f64,
    llmore_reorg_ratio: f64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("crosscheck_fig13");
    let threads = ex.threads();
    let sizes: &[usize] = if ex.quick() {
        &[16, 64]
    } else {
        &[16, 64, 256]
    };
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for &procs in sizes {
        let n = procs; // square problem scaled to the machine
        eprintln!("event-level machines at P = {procs}...");

        // P-sync: real machine, real data; transpose phase bus time.
        let input = Matrix::from_fn(n, n, |r, c| {
            Complex64::new((r as f64 * 0.7).sin(), (c as f64 * 0.3).cos())
        });
        let run = psync::run_fft2d(procs, &input);
        let psync_reorg = run
            .phases
            .iter()
            .find(|p| p.name == "transpose")
            .expect("transpose phase")
            .bus_slots;

        // Mesh: real wormhole transpose of the same matrix.
        let cfg = MeshConfig::table3(procs, 1).with_threads(threads);
        let mut mesh = load_transpose(cfg, procs, n);
        let mesh_reorg = mesh.run().expect("deadlock").cycles;

        let machine_ratio = mesh_reorg as f64 / psync_reorg as f64;

        // The same ratio from the LLMORE phase model (reorg phase only).
        let params = SystemParams {
            n: n as u64,
            ..Default::default()
        };
        let lm_mesh = simulate_fft2d(ArchKind::ElectronicMesh, &params, procs as u64)
            .phases
            .reorg;
        let lm_psync = simulate_fft2d(ArchKind::Psync, &params, procs as u64)
            .phases
            .reorg;
        let llmore_ratio = lm_mesh / lm_psync;

        points.push(Point {
            procs,
            machine_reorg_ratio: machine_ratio,
            llmore_reorg_ratio: llmore_ratio,
        });
        cells.push(vec![
            procs.to_string(),
            f(machine_ratio, 2),
            f(llmore_ratio, 2),
        ]);
    }
    ex.table(
        "Cross-check: mesh/P-sync reorganization ratio — event-level vs LLMORE model",
        &["P", "event-level ratio", "LLMORE-model ratio"],
        &cells,
    )
    .note(
        "both derivations agree the mesh pays a ~3x multiple for reorganization at\n\
         these scales — Fig. 13/14's driving effect — and land within ~30% of each\n\
         other despite being built from entirely different machinery.",
    )
    .rows(&points)
    .run()
}
