//! Ablation: header routing delay `t_r` — how the Table II peak moves as
//! routers get slower (or faster) at route computation.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_tr
//! ```

use analytic::model::FftParams;
use analytic::table1::TABLE1_K;
use bench::{f, BenchError, Experiment};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    t_r: u64,
    peak_k: u64,
    peak_eta_pct: f64,
    eta_at_k64_pct: f64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_tr");
    // Each t_r point is an independent curve evaluation: sweep in parallel.
    let rows: Vec<Row> = [0u64, 1, 2, 4, 8]
        .into_par_iter()
        .map(|t_r| {
            let params = FftParams {
                t_r,
                ..Default::default()
            };
            let (mut peak_k, mut peak) = (1u64, f64::MIN);
            for &k in &TABLE1_K {
                let e = params.mesh_efficiency(k);
                if e > peak {
                    peak = e;
                    peak_k = k;
                }
            }
            Row {
                t_r,
                peak_k,
                peak_eta_pct: peak * 100.0,
                eta_at_k64_pct: params.mesh_efficiency(64) * 100.0,
            }
        })
        .collect();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.t_r.to_string(),
                r.peak_k.to_string(),
                f(r.peak_eta_pct, 2),
                f(r.eta_at_k64_pct, 2),
            ]
        })
        .collect();
    ex.table(
        "Ablation: mesh header routing delay t_r (P = 256, 1024-pt rows)",
        &["t_r", "peak k", "peak eta (%)", "eta at k=64 (%)"],
        &cells,
    )
    .note(
        "t_r = 0 removes the routing tax entirely (peak slides to k = 64, the ideal\n\
         curve); every added cycle pushes the knee to coarser blocking and lower peaks —\n\
         P-sync's pre-scheduled delivery has no equivalent term at all.",
    )
    .rows(&rows)
    .run()
}
