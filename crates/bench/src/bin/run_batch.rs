//! Supervised experiment batch driver — the `run_batch` bin.
//!
//! Runs a batch of Table III jobs under the [`bench::supervisor`] worker
//! pool with the [`bench::cache`] exact result cache, demonstrating every
//! structured outcome the supervision layer produces:
//!
//! * **pass** — the job simulated to completion; its result JSON is written
//!   to `results/batch/<job>.json` and is byte-identical to what the direct
//!   `table3_transpose` bin writes (same [`bench::jobs`] code path);
//! * **cached** — a duplicate configuration served from the result cache
//!   without re-simulating, with the same fingerprint as the pass;
//! * **deadline** — a job submitted with a zero deadline, cancelled at the
//!   fabric's first interrupt poll (`Cancelled` with a structured cause);
//! * **panicked** — a job whose body deliberately panics; the panic is
//!   caught, the payload reported, and the worker respawned.
//!
//! ```text
//! cargo run --release -p bench --bin run_batch [--quick] [--timeout-s <s>]
//! ```
//!
//! `--quick` uses the Table III quick configuration (P = N = 256) for the
//! pass/cached jobs; the full mode uses the paper configuration
//! (P = N = 1024) so an external interrupt test has something long-lived
//! to cancel. SIGINT (ctrl-C, or
//! `timeout -s INT`) triggers a graceful drain: cancel-all, flush the
//! partial batch report, exit 130.
//!
//! The batch summary goes to `results/run_batch.json`. Worker count is 1 so
//! completion order — and therefore which duplicate is the cache hit — is
//! deterministic and the quick golden is byte-stable.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use bench::cache::{fingerprint_hex, ResultCache};
use bench::jobs::{supervised_work, JobSpec, Table3Spec};
use bench::supervisor::{JobError, JobReport, JobSuccess, Supervisor, SupervisorConfig, Work};
use bench::{BenchError, Experiment};
use serde::Serialize;

/// SIGINT latch + handler installation (no-op off unix).
mod sig {
    use std::sync::atomic::AtomicBool;

    /// Set by the handler; polled by the drain loop.
    pub static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    mod imp {
        use std::sync::atomic::Ordering;

        const SIGINT: i32 = 2;

        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn on_sigint(_: i32) {
            // Async-signal-safe: a single atomic store.
            super::INTERRUPTED.store(true, Ordering::Release);
        }

        pub fn install() {
            unsafe {
                signal(SIGINT, on_sigint as *const () as usize);
            }
        }
    }

    /// Route SIGINT to the latch instead of killing the process.
    pub fn install() {
        #[cfg(unix)]
        imp::install();
    }
}

/// One row of the batch summary (`results/run_batch.json`). Deterministic:
/// no wall-clock fields, no host-dependent payloads.
#[derive(Serialize)]
struct BatchRow {
    job: String,
    /// `pass` / `cached` / `deadline` / `panicked` / `failed` / `cancelled`.
    outcome: String,
    attempts: u32,
    /// Deterministic backoff total (ms) the retry policy charged.
    backoff_ms: u64,
    /// Result fingerprint (perf-gate witness) for pass/cached rows.
    fingerprint: Option<String>,
    /// Structured failure detail for the non-pass rows.
    detail: Option<String>,
}

/// Classify a report into the summary row vocabulary.
fn row_for(report: &JobReport) -> BatchRow {
    let (outcome, fingerprint, detail) = match &report.result {
        Ok(JobSuccess {
            cached,
            fingerprint,
            ..
        }) => (
            if *cached { "cached" } else { "pass" },
            Some(fingerprint_hex(*fingerprint)),
            None,
        ),
        Err(JobError::Cancelled { detail }) => {
            let outcome = if detail.contains("deadline") {
                "deadline"
            } else {
                "cancelled"
            };
            (outcome, None, Some(detail.clone()))
        }
        Err(JobError::Panicked { payload }) => ("panicked", None, Some(payload.clone())),
        Err(e) => ("failed", None, Some(e.to_string())),
    };
    BatchRow {
        job: report.name.clone(),
        outcome: outcome.to_string(),
        attempts: report.attempts,
        backoff_ms: report.backoff_ms_total,
        fingerprint,
        detail,
    }
}

/// A supervised Table III job body via the shared [`bench::jobs`] builder:
/// cache lookup keyed on the canonical spec JSON plus the deadline bits,
/// simulation on miss — the same code path `psyncd` routes daemon jobs
/// through.
fn table3_work(cfg: Table3Spec, timeout_s: Option<f64>, cache: Arc<ResultCache>) -> Arc<Work> {
    supervised_work(JobSpec::Table3(cfg), timeout_s, cache, None, None)
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("run_batch");
    sig::install();
    // Suppress the default panic hook's backtrace spam for the supervisor's
    // worker threads — their panics are caught and reported structurally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("sup-worker-"));
        if !in_worker {
            default_hook(info);
        }
    }));

    let mut cfg = if ex.quick() {
        Table3Spec::quick()
    } else {
        // Paper-scale Table III: long-lived enough that an external
        // `timeout -s INT` lands mid-simulation (procs must stay a perfect
        // square for the mesh topology).
        Table3Spec::paper()
    };
    cfg.threads = ex.threads();

    let cache = Arc::new(ResultCache::new());
    // One worker: completion order (and which duplicate hits the cache) is
    // deterministic, so the quick golden is byte-stable.
    let sup = Supervisor::new(SupervisorConfig {
        workers: 1,
        queue_cap: 16,
        max_attempts: 3,
        backoff_base_ms: 10,
        backoff_cap_ms: 1000,
        seed: 7,
    });

    // The four-outcome smoke batch. `--timeout-s` additionally bounds the
    // pass/cached jobs (the deadline demo keeps its forced 0 s budget).
    let batch_timeout = ex.timeout_s();
    let submissions: Vec<(&str, Option<f64>, Arc<Work>)> = vec![
        (
            "table3",
            batch_timeout,
            table3_work(cfg.clone(), batch_timeout, Arc::clone(&cache)),
        ),
        (
            "table3-cached",
            batch_timeout,
            table3_work(cfg.clone(), batch_timeout, Arc::clone(&cache)),
        ),
        (
            "table3-deadline",
            Some(0.0),
            table3_work(cfg.clone(), Some(0.0), Arc::clone(&cache)),
        ),
        (
            "table3-panic",
            None,
            Arc::new(|_| panic!("forced panic: supervisor smoke")),
        ),
    ];
    for (name, timeout_s, work) in submissions {
        // Backpressure protocol: on QueueFull wait the suggested delay and
        // resubmit (cannot trigger at this batch size, but the loop is the
        // documented producer idiom).
        loop {
            match sup.submit(name, timeout_s, Arc::clone(&work)) {
                Ok(_) => break,
                Err(JobError::QueueFull { retry_after_ms }) => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                }
                Err(e) => return Err(BenchError::run("run_batch", e)),
            }
        }
    }

    // Drain loop: collect one report per submitted job, relaying SIGINT to
    // the pool as a cancel-all so in-flight simulations stop at their next
    // interrupt poll and queued jobs drain unrun.
    let mut reports: Vec<JobReport> = Vec::new();
    let mut interrupted = false;
    while (reports.len() as u64) < sup.submitted() {
        if sig::INTERRUPTED.swap(false, Ordering::AcqRel) {
            interrupted = true;
            eprintln!("run_batch: SIGINT — cancelling batch, draining in-flight jobs...");
            sup.cancel_all();
        }
        if let Some(report) = sup.recv_timeout(Duration::from_millis(50)) {
            eprintln!(
                "run_batch: {} -> {}",
                report.name,
                match &report.result {
                    Ok(s) if s.cached => "cached".to_string(),
                    Ok(_) => "pass".to_string(),
                    Err(e) => e.to_string(),
                }
            );
            reports.push(report);
        }
    }
    reports.extend(sup.shutdown());
    reports.sort_by_key(|r| r.id);

    // Flush per-job result files for fresh passes (cache hits share the
    // pass's file; the direct bins own `results/<name>.json`).
    for r in &reports {
        if let Ok(s) = &r.result {
            if !s.cached {
                bench::write_results_at(&format!("batch/{}.json", r.name), &s.json)?;
            }
        }
    }

    let rows: Vec<BatchRow> = reports.iter().map(row_for).collect();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.job.clone(),
                r.outcome.clone(),
                r.attempts.to_string(),
                r.backoff_ms.to_string(),
                r.fingerprint.clone().unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    // Cache accounting goes out with the batch's telemetry (visible under
    // `--metrics-out` as the `service.cache.*` counters, same names the
    // psyncd `status` verb reports).
    let cache_reg = sim_core::telemetry::Registry::new();
    cache.record_telemetry(&cache_reg);
    ex.table(
        &format!(
            "Supervised batch: {} jobs, P = {}, N = {} ({} respawned worker(s))",
            rows.len(),
            cfg.procs,
            cfg.row_len,
            sup.respawns(),
        ),
        &["job", "outcome", "attempts", "backoff ms", "fingerprint"],
        &cells,
    )
    .telemetry(cache_reg)
    .rows(&rows)
    .run()?;

    if interrupted {
        // Partial results are flushed; exit with the conventional SIGINT
        // status so wrappers see the interruption.
        std::process::exit(130);
    }
    Ok(())
}
