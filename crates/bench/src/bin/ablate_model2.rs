//! Ablation: Model I vs Model II delivery on the P-sync machine — the
//! paper's §VI note that "performance would improve further under P-sync if
//! a Model II delivery mode was used", measured on the event-level machine
//! (DESIGN.md §7.6), with a k sweep past the paper's 64 (DESIGN.md §7.4).
//!
//! ```text
//! cargo run --release -p bench --bin ablate_model2 [--quick]
//! ```

use bench::{f, BenchError, Experiment};
use fft::Complex64;
use psync::model2::run_model2_rows;

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_model2");
    let quick = ex.quick();
    let (procs, n) = if quick {
        (8usize, 256usize)
    } else {
        (16, 1024)
    };
    let rows: Vec<Vec<Complex64>> = (0..procs)
        .map(|p| {
            (0..n)
                .map(|i| {
                    Complex64::new(((p * 13 + i) as f64 * 0.19).sin(), (i as f64 * 0.31).cos())
                })
                .collect()
        })
        .collect();

    let mut summaries = Vec::new();
    let mut cells = Vec::new();
    let mut k = 1usize;
    let k_cap = if quick { 64 } else { 512 };
    while k <= k_cap.min(n) {
        eprintln!("k = {k}...");
        let run = run_model2_rows(procs, n, k, &rows);
        let s = run.summary();
        cells.push(vec![
            k.to_string(),
            f(s.serialized_seconds * 1e6, 3),
            f(s.overlapped_seconds * 1e6, 3),
            f(s.serialized_seconds / s.overlapped_seconds, 2),
            f(s.efficiency * 100.0, 2),
        ]);
        summaries.push(s);
        k *= 2;
    }
    let best = summaries
        .iter()
        .max_by(|a, b| a.efficiency.partial_cmp(&b.efficiency).unwrap())
        .unwrap();
    let summary = format!(
        "best efficiency {:.2}% at k = {} — past the knee, finer blocks add start-up\n\
         rounds faster than they shave the bubble (the Table I curve bends the same way).",
        best.efficiency * 100.0,
        best.k
    );
    ex.table(
        &format!("Ablation: Model I vs Model II on P-sync ({procs} procs, {n}-pt rows)"),
        &[
            "k",
            "Model I (us)",
            "Model II (us)",
            "speedup",
            "Model II eta (%)",
        ],
        &cells,
    )
    .note(summary)
    .rows(&summaries)
    .run()
}
