//! Regenerates **Table I** — compute efficiency for zero latency.
//!
//! ```text
//! cargo run --release -p bench --bin table1
//! ```

use analytic::table1::{table1, PAPER_TABLE1};
use bench::{f, BenchError, Experiment};

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("table1");
    let rows = table1();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .zip(&PAPER_TABLE1)
        .map(|(r, &(_, _, _, _, _, paper_eta))| {
            vec![
                r.k.to_string(),
                r.s_b.to_string(),
                f(r.t_ck_ns, 0),
                f(r.t_cf_ns, 0),
                f(r.w_p_gbps, 1),
                f(r.eta_pct, 2),
                f(paper_eta, 2),
            ]
        })
        .collect();

    // Exact-match audit against the printed paper values.
    let mut mismatches = 0;
    for (r, &(_, _, _, _, w_p, eta)) in rows.iter().zip(&PAPER_TABLE1) {
        if (r.eta_pct - eta).abs() > 0.005 || (r.w_p_gbps - w_p).abs() > 0.05 {
            mismatches += 1;
        }
    }

    ex.table(
        "Table I: compute efficiency for zero latency (1024-pt FFT, P = 256)",
        &[
            "k",
            "S_b",
            "t_ck (ns)",
            "t_cf (ns)",
            "W_p (Gb/s)",
            "eta (%)",
            "paper eta (%)",
        ],
        &cells,
    )
    .note(format!("paper-value mismatches: {mismatches} (expect 0)"))
    .rows(&rows)
    .run()
}
