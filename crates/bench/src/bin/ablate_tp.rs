//! Ablation: reorder-staging cost `t_p` swept 1..=8 — extends Table III's
//! two-point comparison into a curve.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_tp [--quick]
//! ```

use analytic::table3::Table3Params;
use bench::{f, BenchError, Experiment};
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    t_p: u64,
    mesh_cycles: u64,
    multiplier: f64,
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_tp");
    let threads = ex.threads();
    let (procs, row_len) = if ex.quick() { (64, 64) } else { (256, 256) };
    let pscan = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    }
    .pscan_cycles();

    // Eight independent simulations: sweep the t_p axis in parallel.
    let interrupt = ex.interrupt();
    let points: Vec<Point> = (1u64..9)
        .into_par_iter()
        .map(|t_p| {
            eprintln!("t_p = {t_p}...");
            let cfg = MeshConfig::table3(procs, t_p).with_threads(threads);
            let mut mesh = load_transpose(cfg, procs, row_len);
            if let Some(intr) = &interrupt {
                mesh.set_interrupt(intr.clone());
            }
            let cycles = mesh.run().map(|r| r.cycles).map_err(|e| (t_p, e));
            cycles.map(|cycles| Point {
                t_p,
                mesh_cycles: cycles,
                multiplier: cycles as f64 / pscan as f64,
            })
        })
        .collect::<Result<_, _>>()
        .map_err(|(t_p, e)| BenchError::run(&format!("ablate_tp t_p={t_p}"), e))?;
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.t_p.to_string(),
                p.mesh_cycles.to_string(),
                f(p.multiplier, 2),
            ]
        })
        .collect();
    // The port-bound model predicts ~linear growth: (2 + t_p) per element.
    let slope = (points[7].mesh_cycles - points[0].mesh_cycles) as f64 / 7.0;
    ex.table(
        &format!(
            "Ablation: t_p sweep, transpose P = {procs}, N = {row_len} (PSCAN = {pscan} cycles)"
        ),
        &["t_p", "mesh cycles", "multiplier vs PSCAN"],
        &cells,
    )
    .note(format!(
        "marginal cost per unit t_p: {:.0} cycles (elements = {}): {:.2} cycles/element",
        slope,
        procs * row_len,
        slope / (procs * row_len) as f64
    ))
    .rows(&points)
    .run()
}
