//! Conformance oracle: every §V closed form differentially validated
//! against the cycle-accurate fabric that implements it (DESIGN.md §12).
//!
//! Six check families sweep (N, P, k, fault-rate) operating points:
//!
//! 1. `eq11` / `eq14` — the Model II machine ([`psync::run_model2_rows`])
//!    vs Eq. 11's total time and Eq. 14's efficiency, with `t_dk`
//!    recovered from the machine's own serialized measurement.
//! 2. `table3` — the SCA gather span and closed-form writeback cycles
//!    (Eqs. 23/24; 1,081,344 at paper scale).
//! 3. `eq21` / `eq22` — the wormhole mesh scatter vs the delivery closed
//!    form `P·F + P·√P·t_r` and its efficiency ratio.
//! 4. `fig11` — the Fig. 11 ideal curve vs Eq. 11 evaluated at the Eq. 19
//!    balance point (two independent derivations of the same curve).
//! 5. `eq20` — the required-bandwidth classification vs Eq. 15's
//!    compute-bound predicate, plus the SCA's sustained line rate vs the
//!    WDM plan's nominal bandwidth.
//! 6. `crc` — fault-rate sweep through the reliable-gather path, holding
//!    the retry/backoff/error accounting identities from outside.
//!
//! The harness exits nonzero on any divergence; rows land in
//! `results/crosscheck_models.json` shaped for `scripts/perf_gate.py`
//! (keyed on `policy`/`threads`, `cycles` as the deterministic witness).
//!
//! ```text
//! cargo run --release -p bench --bin crosscheck_models [--quick]
//! ```

use std::time::Instant;

use analytic::model::{FftParams, ModelIi};
use analytic::table3::Table3Params;
use bench::crosscheck::{
    check, check_exact_u64, failures, predict_model2, witness, CheckRow, TOL_ALGEBRAIC,
    TOL_CLOSED_FORM, TOL_EQ21_MESH, TOL_LINE_RATE,
};
use bench::{f, BenchError, Experiment};
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::workloads::{eq21_delivery_cycles, load_scatter};
use fft::Complex64;
use pscan::compiler::GatherSpec;
use pscan::faults::PscanFaultConfig;
use pscan::network::{Pscan, PscanConfig};

/// Deterministic test signal: one `n`-sample row per processor.
fn signal_rows(procs: usize, n: usize) -> Vec<Vec<Complex64>> {
    (0..procs)
        .map(|p| {
            (0..n)
                .map(|i| {
                    Complex64::new(
                        ((p * 31 + i) as f64 * 0.1).sin(),
                        ((i * 17 + p) as f64 * 0.05).cos(),
                    )
                })
                .collect()
        })
        .collect()
}

/// Check 1: Eq. 11/14 vs the overlapped Model II machine.
fn check_eq11_model2(quick: bool, rows_out: &mut Vec<CheckRow>) {
    let (procs, n, ks): (usize, usize, &[usize]) = if quick {
        (8, 64, &[1, 4, 8])
    } else {
        (16, 1024, &[1, 8, 64])
    };
    let rows = signal_rows(procs, n);
    for &k in ks {
        let point = format!("P={procs},N={n},k={k}");
        eprintln!("crosscheck: eq11 machine at {point} ...");
        let t0 = Instant::now();
        let run = psync::run_model2_rows(procs, n, k, &rows);
        let wall = t0.elapsed().as_secs_f64();
        let pred = predict_model2(procs, n, k, run.serialized_seconds);
        rows_out.push(check(
            "eq11_total_time",
            &point,
            run.overlapped_seconds,
            pred.overlapped_seconds,
            TOL_ALGEBRAIC,
            witness(run.overlapped_seconds),
            wall,
        ));
        rows_out.push(check(
            "eq14_efficiency",
            &point,
            run.efficiency,
            pred.efficiency,
            TOL_ALGEBRAIC,
            witness(run.efficiency),
            wall,
        ));
    }
}

/// Check 2: Table III — SCA gather span and closed-form writeback cycles.
fn check_table3_pscan(quick: bool, rows_out: &mut Vec<CheckRow>) {
    let (procs, row_len) = if quick { (32, 32) } else { (1024, 1024) };
    let point = format!("P={procs},N={row_len}");
    eprintln!("crosscheck: table3 gather at {point} ...");
    let t0 = Instant::now();
    let pscan = Pscan::new(PscanConfig::paper_default().with_nodes(procs));
    let spec = GatherSpec {
        slot_source: (0..procs * row_len).map(|k| k % procs).collect(),
    };
    let data: Vec<Vec<u64>> = (0..procs).map(|p| vec![p as u64; row_len]).collect();
    let out = pscan
        .gather(&spec, &data)
        .expect("gather compiles and runs");
    let wall = t0.elapsed().as_secs_f64();

    // A gap-free SCA moving S samples at one word per slot spans exactly S
    // slots at the terminus.
    let payload = (procs * row_len) as u64;
    let span_slots = out.last_arrival.since(out.first_arrival).as_ps() / pscan.slot().as_ps() + 1;
    rows_out.push(check_exact_u64(
        "table3_span",
        &point,
        span_slots,
        payload,
        wall,
    ));
    rows_out.push(check(
        "table3_utilization",
        &point,
        out.utilization,
        1.0,
        0.0,
        payload,
        wall,
    ));

    // With DRAM-row headers added, the total equals Eqs. 23/24.
    let t3 = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    };
    let headers = payload.div_ceil(t3.s_r / t3.s_b);
    rows_out.push(check_exact_u64(
        "table3_cycles",
        &point,
        payload + headers,
        t3.pscan_cycles(),
        wall,
    ));
}

/// Check 3: Eq. 21/22 vs the wormhole mesh scatter.
fn check_eq21_mesh(quick: bool, threads: usize, rows_out: &mut Vec<CheckRow>) {
    let blocks: &[usize] = if quick {
        &[16, 64]
    } else {
        &[16, 64, 128, 256]
    };
    let nodes = 64usize;
    for &block in blocks {
        let point = format!("nodes={nodes},block={block}");
        eprintln!("crosscheck: eq21 mesh scatter at {point} ...");
        let cfg = MeshConfig {
            topology: Topology::square(nodes, MemifPlacement::SingleCorner),
            t_r: 1,
            policy: RoutingPolicy::Xy,
            memif: Default::default(),
            buffer_depth: 2,
            max_cycles: 1 << 30,
            threads,
        };
        let t0 = Instant::now();
        let mut mesh = load_scatter(cfg, block, 1);
        let res = mesh.run().expect("scatter completes");
        let wall = t0.elapsed().as_secs_f64();
        let p = (nodes - 1) as u64;
        let flits = block as u64 + 1; // payload + header
        let predicted = eq21_delivery_cycles(p, flits, 1);
        rows_out.push(check(
            "eq21_delivery",
            &point,
            res.cycles as f64,
            predicted as f64,
            TOL_EQ21_MESH,
            res.cycles,
            wall,
        ));
        // Eq. 22 as a ratio: delivery efficiency = serial-injection bound /
        // actual, predicted by F/(F + √P·t_r) in Eq. 21's integer form.
        let measured_eta = (p * flits) as f64 / res.cycles as f64;
        let predicted_eta = (p * flits) as f64 / predicted as f64;
        rows_out.push(check(
            "eq22_efficiency",
            &point,
            measured_eta,
            predicted_eta,
            TOL_EQ21_MESH,
            witness(measured_eta),
            wall,
        ));
    }
}

/// Check 4: Fig. 11's ideal curve vs Eq. 11 at the Eq. 19 balance point.
fn check_fig11_ideal(rows_out: &mut Vec<CheckRow>) {
    let params = FftParams::default();
    let t0 = Instant::now();
    for k in [1u64, 2, 4, 8, 16, 32, 64] {
        let point = format!("P={},N={},k={k}", params.p, params.n);
        let t_ck = params.t_ck_ns(k);
        let model = ModelIi {
            p: params.p,
            t_dk: t_ck / params.p as f64, // Eq. 19 balance
            t_ck,
            k,
        };
        let predicted = params.t_c_ns(k) / (model.total_time() + params.t_cf_ns(k));
        let measured = analytic::fig11::psync_efficiency(&params, k, 0.0);
        let wall = t0.elapsed().as_secs_f64();
        rows_out.push(check(
            "fig11_ideal",
            &point,
            measured,
            predicted,
            TOL_CLOSED_FORM,
            witness(measured),
            wall,
        ));
    }
}

/// Check 5: Eq. 20's bandwidth requirement vs Eq. 15's boundedness
/// predicate, plus the SCA's sustained line rate vs the plan's nominal.
fn check_eq20_bandwidth(rows_out: &mut Vec<CheckRow>) {
    let params = FftParams::default();
    let delivered_gbps = PscanConfig::paper_default().plan.aggregate_gbps();
    let t0 = Instant::now();
    for k in [1u64, 2, 4, 8, 16, 32, 64] {
        let point = format!("P={},N={},k={k},W={delivered_gbps}", params.p, params.n);
        let required = params.required_bandwidth_gbps(k);
        // Independent classification through Eq. 15: deliver blocks at the
        // plan's line rate and ask the model which side of the knee we're on.
        let block_bits = (params.block_samples(k) * params.sample_bits) as f64;
        let model = ModelIi {
            p: params.p,
            t_dk: block_bits / delivered_gbps, // ns at W Gb/s
            t_ck: params.t_ck_ns(k),
            k,
        };
        let agree = model.is_compute_bound() == (required <= delivered_gbps);
        let wall = t0.elapsed().as_secs_f64();
        rows_out.push(check(
            "eq20_boundedness",
            &point,
            if agree { 1.0 } else { 0.0 },
            1.0,
            0.0,
            witness(required),
            wall,
        ));
    }

    // Sustained line rate: a gap-free SCA burst must deliver the plan's
    // aggregate bandwidth (the +1 fencepost slot is the only slack).
    let procs = 32usize;
    let words = 64usize;
    let point = format!("P={procs},slots={}", procs * words);
    eprintln!("crosscheck: eq20 line rate at {point} ...");
    let t1 = Instant::now();
    let pscan = Pscan::new(PscanConfig::paper_default().with_nodes(procs));
    let spec = GatherSpec {
        slot_source: (0..procs * words).map(|k| k % procs).collect(),
    };
    let data: Vec<Vec<u64>> = (0..procs).map(|p| vec![p as u64; words]).collect();
    let out = pscan.gather(&spec, &data).expect("gather runs");
    let span_ps = out.last_arrival.since(out.first_arrival).as_ps() + pscan.slot().as_ps();
    let measured_gbps = out.bits as f64 / (span_ps as f64 * 1e-12) / 1e9;
    rows_out.push(check(
        "eq20_line_rate",
        &point,
        measured_gbps,
        pscan.config().plan.aggregate_gbps(),
        TOL_LINE_RATE,
        out.bits,
        t1.elapsed().as_secs_f64(),
    ));
}

/// Check 6: CRC/retry accounting identities across a fault-rate sweep.
fn check_crc_accounting(rows_out: &mut Vec<CheckRow>) {
    let procs = 16usize;
    let spec = GatherSpec::interleaved(procs, 4, 1); // 64-slot burst
    let burst = spec.total_slots();
    let data: Vec<Vec<u64>> = (0..procs).map(|p| vec![p as u64 * 3 + 1; 4]).collect();
    for rate in [0.0, 1e-2, 5e-2] {
        let point = format!("P={procs},burst={burst},rate={rate}");
        eprintln!("crosscheck: crc accounting at {point} ...");
        let t0 = Instant::now();
        let mut pscan = Pscan::new(PscanConfig::paper_default().with_nodes(procs));
        pscan.set_faults(PscanFaultConfig {
            seed: 0xFA,
            word_error_rate: rate,
            max_retries: 256,
            ..Default::default()
        });
        let out = pscan
            .gather_reliable(&spec, &data)
            .expect("retry budget covers the swept rates");
        let wall = t0.elapsed().as_secs_f64();
        // Per-CP error attribution must account for every corrupted word.
        rows_out.push(check_exact_u64(
            "crc_error_attribution",
            &point,
            out.errors_by_node.iter().sum::<u64>(),
            out.corrupted_words,
            wall,
        ));
        // Bus occupancy decomposes exactly into bursts + backoff waits.
        rows_out.push(check_exact_u64(
            "crc_slot_accounting",
            &point,
            out.slots_on_bus,
            u64::from(out.attempts) * burst + out.backoff_slots,
            wall,
        ));
        // Retries are attempts minus the accepted pass.
        rows_out.push(check_exact_u64(
            "crc_retries",
            &point,
            u64::from(out.retries),
            u64::from(out.attempts) - 1,
            wall,
        ));
        if rate == 0.0 {
            // Rate 0 is exactly one clean pass with nothing corrupted.
            rows_out.push(check_exact_u64(
                "crc_clean_pass",
                &point,
                u64::from(out.attempts) + out.corrupted_words + out.backoff_slots,
                1,
                wall,
            ));
        }
    }
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("crosscheck_models");
    let quick = ex.quick();

    let mut rows: Vec<CheckRow> = Vec::new();
    check_eq11_model2(quick, &mut rows);
    check_table3_pscan(quick, &mut rows);
    check_eq21_mesh(quick, ex.threads(), &mut rows);
    check_fig11_ideal(&mut rows);
    check_eq20_bandwidth(&mut rows);
    check_crc_accounting(&mut rows);

    let bad = failures(&rows);
    assert!(
        bad.is_empty(),
        "conformance violated — {} divergence(s):\n  {}",
        bad.len(),
        bad.join("\n  ")
    );

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                f(r.measured, 6),
                f(r.predicted, 6),
                format!("{:.1e}", r.rel_err),
                format!("{:.0e}", r.tol),
                "ok".to_string(),
            ]
        })
        .collect();
    ex.table(
        "Cross-model conformance (§V closed forms vs cycle-accurate fabrics)",
        &[
            "check [point]",
            "measured",
            "predicted",
            "rel err",
            "tol",
            "",
        ],
        &table,
    )
    .note(format!(
        "{} checks, 0 divergences (invariants {})",
        rows.len(),
        if sim_core::invariants::ENABLED {
            "ON"
        } else {
            "compiled out"
        }
    ))
    .rows(&rows)
    .run()
}
