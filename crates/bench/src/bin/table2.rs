//! Regenerates **Table II** — electronic mesh compute efficiency with
//! latency — and cross-checks the analytic delivery efficiency against the
//! cycle-level `emesh` simulator.
//!
//! ```text
//! cargo run --release -p bench --bin table2 [--quick]
//! ```

use analytic::model::FftParams;
use analytic::table2::{table2, PAPER_TABLE2};
use bench::{f, BenchError, Experiment};
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::workloads::load_scatter;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    k: u64,
    eta_d_pct: f64,
    eta_pct: f64,
    paper_eta_pct: f64,
    sim_eta_d_pct: Option<f64>,
}

/// Measure delivery efficiency by simulating one round of blocked scatter
/// on a real mesh and comparing to the zero-latency injection bound.
fn simulated_delivery_efficiency(
    p: usize,
    block_words: usize,
    threads: usize,
    interrupt: Option<&sim_core::cancel::Interrupt>,
) -> Result<f64, emesh::mesh::MeshError> {
    let cfg = MeshConfig::paper_default()
        .with_topology(Topology::square(p, MemifPlacement::SingleCorner))
        .with_policy(RoutingPolicy::Xy)
        .with_threads(threads);
    let mut mesh = load_scatter(cfg, block_words, 1);
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    let res = mesh.run()?;
    // Zero-latency bound: (P-1) packets x (block + header) flits injected
    // serially from the memory corner.
    let ideal = ((p - 1) * (block_words + 1)) as f64;
    Ok(ideal / res.cycles as f64)
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("table2");
    let threads = ex.threads();
    let params = FftParams::default();
    let rows = table2();
    // Simulating the delivery on a real 256-node mesh is meaningful but
    // slower; --quick uses a 64-node mesh.
    let sim_p = if ex.quick() { 64 } else { 256 };

    let interrupt = ex.interrupt();
    let mut out_rows = Vec::new();
    let mut cells = Vec::new();
    for (r, &(_, _, paper_eta)) in rows.iter().zip(&PAPER_TABLE2) {
        let block = params.block_samples(r.k) as usize;
        let sim = simulated_delivery_efficiency(sim_p, block, threads, interrupt.as_ref())
            .map_err(|e| BenchError::run("table2", e))?;
        out_rows.push(Row {
            k: r.k,
            eta_d_pct: r.eta_d_pct,
            eta_pct: r.eta_pct,
            paper_eta_pct: paper_eta,
            sim_eta_d_pct: Some(sim * 100.0),
        });
        cells.push(vec![
            r.k.to_string(),
            f(r.eta_d_pct, 2),
            f(r.eta_pct, 2),
            f(paper_eta, 2),
            f(sim * 100.0, 1),
        ]);
    }
    let peak = out_rows
        .iter()
        .max_by(|a, b| a.eta_pct.partial_cmp(&b.eta_pct).unwrap())
        .unwrap();
    let peak_note = format!(
        "peak efficiency: {:.2}% at k = {} (paper: 81.74% at k = 8)",
        peak.eta_pct, peak.k
    );
    ex.table(
        &format!(
            "Table II: mesh compute efficiency with latency (analytic P = 256; sim on {sim_p}-node mesh)"
        ),
        &["k", "eta_d (%)", "eta (%)", "paper eta (%)", "sim eta_d (%)"],
        &cells,
    )
    .note(peak_note)
    .rows(&out_rows)
    .run()
}
