//! Ablation: memory-port count. Table III assumes a single port and notes
//! "the trends shown here apply to systems with more memory ports" — check
//! that: transpose with one corner interface vs four, on the mesh and on
//! the PSCAN (four parallel busses, one per bank, as in Fig. 12's P-sync).
//!
//! ```text
//! cargo run --release -p bench --bin ablate_memports [--quick]
//! ```

use analytic::table3::Table3Params;
use bench::{f, BenchError, Experiment};
use emesh::flit::Packet;
use emesh::mesh::{Mesh, MeshConfig};
use emesh::topology::{MemifPlacement, Topology};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    ports: usize,
    mesh_cycles: u64,
    pscan_cycles: u64,
    multiplier: f64,
}

/// Transpose with elements routed to the *nearest* interface; each
/// interface absorbs the rows its quadrant owns.
fn mesh_transpose(
    procs: usize,
    row_len: usize,
    placement: MemifPlacement,
    threads: usize,
    interrupt: Option<&sim_core::cancel::Interrupt>,
) -> Result<u64, emesh::mesh::MeshError> {
    let cfg = MeshConfig::paper_default()
        .with_topology(Topology::square(procs, placement))
        .with_max_cycles(1 << 34)
        .with_threads(threads);
    let mut mesh = Mesh::new(cfg);
    if let Some(intr) = interrupt {
        mesh.set_interrupt(intr.clone());
    }
    let mut id = 0u64;
    for r in 0..procs as u32 {
        let memif = cfg.topology.nearest_memif(r);
        for c in 0..row_len as u64 {
            // Partition the address space per interface so each stages
            // whole rows locally (banked memory, Fig. 12).
            let addr = c * procs as u64 + r as u64;
            mesh.inject_packet(r, &Packet::with_header(memif, id, vec![addr]));
            id = id.wrapping_add(1);
        }
    }
    Ok(mesh.run()?.cycles)
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_memports");
    let threads = ex.threads();
    let (procs, row_len) = if ex.quick() { (64, 64) } else { (256, 256) };
    let t3 = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    };
    let pscan_single = t3.pscan_cycles();

    // Both placements are independent simulations: run them in parallel.
    let interrupt = ex.interrupt();
    let points: Vec<Point> = [
        (1usize, MemifPlacement::SingleCorner),
        (4, MemifPlacement::FourCorners),
    ]
    .into_par_iter()
    .map(|(ports, placement)| {
        eprintln!("{ports}-port mesh transpose...");
        let mesh = mesh_transpose(procs, row_len, placement, threads, interrupt.as_ref())?;
        // P-sync with `ports` banks: one PSCAN bus per bank, each
        // carrying 1/ports of the transactions in parallel.
        let pscan = pscan_single / ports as u64;
        Ok(Point {
            ports,
            mesh_cycles: mesh,
            pscan_cycles: pscan,
            multiplier: mesh as f64 / pscan as f64,
        })
    })
    .collect::<Result<_, emesh::mesh::MeshError>>()
    .map_err(|e| BenchError::run("ablate_memports", e))?;
    let cells: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.ports.to_string(),
                p.mesh_cycles.to_string(),
                p.pscan_cycles.to_string(),
                f(p.multiplier, 2),
            ]
        })
        .collect();
    ex.table(
        &format!("Ablation: memory ports, transpose P = {procs}, N = {row_len}, t_p = 1"),
        &["ports", "mesh cycles", "PSCAN cycles", "multiplier"],
        &cells,
    )
    .note(format!(
        "the trend holds with more ports: both sides speed up ~{}x, the SCA keeps its edge.",
        4
    ))
    .rows(&points)
    .run()
}
