//! Ablation: DRAM row size `S_r` sweep for the transpose writeback —
//! Eq. (24)'s header-amortization trade (DESIGN.md §7.5).
//!
//! Wider rows amortize the `S_h` header over more payload beats, but real
//! DRAMs pay activate/precharge per row; the PSCAN's linear write stream
//! keeps those hidden whereas a scrambled stream cannot. Both effects are
//! shown: the closed-form bus cycles and a measured DRAM-controller cost
//! for linear vs scrambled arrival order.
//!
//! ```text
//! cargo run --release -p bench --bin ablate_row_size
//! ```

use analytic::table3::Table3Params;
use bench::{f, BenchError, Experiment};
use memory::{AccessKind, DramConfig, DramController};
use serde::Serialize;
use sim_core::rng::permutation;

#[derive(Serialize)]
struct Point {
    s_r_bits: u64,
    pscan_bus_cycles: u64,
    header_overhead_pct: f64,
    dram_linear_cycles: u64,
    dram_scrambled_cycles: u64,
}

fn dram_cost(
    row_bits: u64,
    scrambled: bool,
    interrupt: Option<&sim_core::cancel::Interrupt>,
) -> Result<u64, memory::TraceCancelled> {
    let cfg = DramConfig::default().with_row_bits(row_bits);
    let mut c = DramController::new(cfg, 64);
    let n = 1u64 << 16;
    match interrupt {
        Some(intr) => {
            let mut intr = intr.clone();
            if scrambled {
                let order = permutation(n as usize, 42);
                c.run_trace_supervised(
                    order.into_iter().map(|x| x as u64),
                    AccessKind::Write,
                    &mut intr,
                )
            } else {
                c.run_trace_supervised(0..n, AccessKind::Write, &mut intr)
            }
        }
        None if scrambled => {
            let order = permutation(n as usize, 42);
            Ok(c.run_trace(order.into_iter().map(|x| x as u64), AccessKind::Write))
        }
        None => Ok(c.run_trace(0..n, AccessKind::Write)),
    }
}

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("ablate_row_size");
    let interrupt = ex.interrupt();
    let mut points = Vec::new();
    let mut cells = Vec::new();
    for s_r in [512u64, 1024, 2048, 4096, 8192] {
        let p = Table3Params {
            s_r,
            ..Default::default()
        };
        let cycles = p.pscan_cycles();
        let payload = p.total_samples(); // 1 cycle per 64-bit sample
        let overhead = (cycles - payload) as f64 / payload as f64 * 100.0;
        let lin = dram_cost(s_r, false, interrupt.as_ref())
            .map_err(|e| BenchError::run("ablate_row_size", e))?;
        let scr = dram_cost(s_r, true, interrupt.as_ref())
            .map_err(|e| BenchError::run("ablate_row_size", e))?;
        points.push(Point {
            s_r_bits: s_r,
            pscan_bus_cycles: cycles,
            header_overhead_pct: overhead,
            dram_linear_cycles: lin,
            dram_scrambled_cycles: scr,
        });
        cells.push(vec![
            s_r.to_string(),
            cycles.to_string(),
            f(overhead, 2),
            lin.to_string(),
            scr.to_string(),
            f(scr as f64 / lin as f64, 2),
        ]);
    }
    ex.table(
        "Ablation: DRAM row size S_r (2^20-sample transpose; DRAM columns: 2^16-word write stream)",
        &[
            "S_r (bits)",
            "PSCAN cycles",
            "header %",
            "DRAM linear",
            "DRAM scrambled",
            "scramble penalty",
        ],
        &cells,
    )
    .note(
        "wider rows shrink header overhead but punish out-of-order arrival harder —\n\
         which is exactly why the SCA's in-flight ordering matters.",
    )
    .rows(&points)
    .run()
}
