//! Regenerates **Table III** — transpose completion time in cycles.
//!
//! PSCAN side: both the closed-form Eq. (23)/(24) arithmetic and the actual
//! bus-slot count of an end-to-end SCA writeback on the simulated machine.
//! Mesh side: the cycle-level wormhole simulation at `t_p = 1` and
//! `t_p = 4`.
//!
//! ```text
//! cargo run --release -p bench --bin table3_transpose [--quick]
//! ```
//!
//! `--quick` runs a 256-processor / 256-sample-row configuration (the full
//! paper configuration is P = 1024, N = 1024 → 2²⁰ elements and takes a
//! couple of minutes of simulation).

use analytic::table3::{
    table3_pscan_cycles, Table3Params, PAPER_MESH_WRITEBACK_TP1, PAPER_MESH_WRITEBACK_TP4,
};
use bench::{f, quick_mode, render_table, write_json, BenchError};
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use rayon::prelude::*;
use serde::Serialize;

#[derive(Serialize)]
struct Result {
    procs: usize,
    row_len: usize,
    pscan_cycles: u64,
    mesh_cycles_tp1: u64,
    mesh_cycles_tp4: u64,
    multiplier_tp1: f64,
    multiplier_tp4: f64,
    paper_multiplier_tp1: f64,
    paper_multiplier_tp4: f64,
}

fn mesh_transpose_cycles(procs: usize, row_len: usize, t_p: u64) -> u64 {
    let cfg = MeshConfig::table3(procs, t_p);
    let mut mesh = load_transpose(cfg, procs, row_len);
    let res = mesh.run().expect("transpose deadlocked");
    let s = res.memif_stats[0];
    assert_eq!(s.elements as usize, procs * row_len, "lost elements");
    res.cycles
}

fn main() -> std::result::Result<(), BenchError> {
    let (procs, row_len) = if quick_mode() {
        (256, 256)
    } else {
        (1024, 1024)
    };

    // PSCAN closed form, scaled to this configuration.
    let params = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    };
    let pscan = params.pscan_cycles();

    // The two t_p points are independent simulations: run them in parallel.
    let mesh_cycles: Vec<u64> = [1u64, 4]
        .into_par_iter()
        .map(|t_p| {
            eprintln!("simulating mesh transpose (P = {procs}, N = {row_len}, t_p = {t_p})...");
            mesh_transpose_cycles(procs, row_len, t_p)
        })
        .collect();
    let (mesh1, mesh4) = (mesh_cycles[0], mesh_cycles[1]);

    let result = Result {
        procs,
        row_len,
        pscan_cycles: pscan,
        mesh_cycles_tp1: mesh1,
        mesh_cycles_tp4: mesh4,
        multiplier_tp1: mesh1 as f64 / pscan as f64,
        multiplier_tp4: mesh4 as f64 / pscan as f64,
        paper_multiplier_tp1: PAPER_MESH_WRITEBACK_TP1 as f64 / table3_pscan_cycles() as f64,
        paper_multiplier_tp4: PAPER_MESH_WRITEBACK_TP4 as f64 / table3_pscan_cycles() as f64,
    };

    let cells = vec![
        vec![
            "PSCAN (SCA)".to_string(),
            "-".to_string(),
            result.pscan_cycles.to_string(),
            "1.00".to_string(),
            "1.00".to_string(),
        ],
        vec![
            "mesh".to_string(),
            "1".to_string(),
            result.mesh_cycles_tp1.to_string(),
            f(result.multiplier_tp1, 2),
            f(result.paper_multiplier_tp1, 2),
        ],
        vec![
            "mesh".to_string(),
            "4".to_string(),
            result.mesh_cycles_tp4.to_string(),
            f(result.multiplier_tp4, 2),
            f(result.paper_multiplier_tp4, 2),
        ],
    ];
    println!(
        "{}",
        render_table(
            &format!(
                "Table III: transpose writeback, P = {procs}, N = {row_len} ({} samples)",
                procs * row_len
            ),
            &[
                "network",
                "t_p",
                "writeback (cycles)",
                "multiplier",
                "paper multiplier"
            ],
            &cells
        )
    );
    if !quick_mode() {
        println!(
            "paper PSCAN cycles: {} (ours: {})",
            table3_pscan_cycles(),
            result.pscan_cycles
        );
    }
    write_json("table3", &result)?;
    Ok(())
}
