//! Regenerates **Table III** — transpose completion time in cycles.
//!
//! PSCAN side: both the closed-form Eq. (23)/(24) arithmetic and the actual
//! bus-slot count of an end-to-end SCA writeback on the simulated machine.
//! Mesh side: the cycle-level wormhole simulation at `t_p = 1` and
//! `t_p = 4`.
//!
//! ```text
//! cargo run --release -p bench --bin table3_transpose [--quick] \
//!     [--timeout-s <secs>] [--trace-out trace.json] [--metrics-out metrics.json]
//! ```
//!
//! `--quick` runs a 256-processor / 256-sample-row configuration (the full
//! paper configuration is P = 1024, N = 1024 → 2²⁰ elements and takes a
//! couple of minutes of simulation). With `--trace-out`/`--metrics-out`
//! the mesh runs instrumented (per-router spans, memif/DRAM series) and a
//! small P-sync machine executes the SCA writeback for real so the trace
//! also carries per-CP drive and per-phase spans.
//!
//! The workload itself lives in [`bench::jobs`] so the supervised batch
//! driver (`run_batch`) produces byte-identical result files.

use bench::jobs::{run_table3, Table3Spec};
use bench::{f, BenchError, Experiment};
use pscan::compiler::{GatherSpec, ScatterSpec};
use psync::machine::{Machine, MachineConfig};
use sim_core::telemetry::Registry;

/// Trace-mode companion: the default PSCAN number is closed-form
/// arithmetic, so to get per-CP drive and per-phase spans into the trace
/// we execute a small SCA delivery → compute → writeback on the simulated
/// machine and harvest its registry.
fn traced_machine_writeback() -> Registry {
    const NODES: usize = 8;
    const BLOCK: usize = 8;
    let words = NODES * BLOCK;
    let mut m = Machine::new(MachineConfig::paper_default(NODES, 2 * words));
    m.enable_telemetry();
    m.head.fill(0, &(0..words as u64).collect::<Vec<_>>());
    let addrs: Vec<u64> = (0..words as u64).collect();
    let delivered = m.scatter_from_memory("deliver", &addrs, &ScatterSpec::blocked(NODES, BLOCK));
    m.compute_phase("compute", |_| 100.0);
    let back: Vec<u64> = (words as u64..2 * words as u64).collect();
    m.gather_to_memory(
        "writeback",
        &GatherSpec::interleaved(NODES, BLOCK, 1),
        &delivered,
        &back,
    );
    m.take_telemetry().expect("telemetry enabled")
}

fn main() -> std::result::Result<(), BenchError> {
    let mut ex = Experiment::new("table3");
    let mut cfg = if ex.quick() {
        Table3Spec::quick()
    } else {
        Table3Spec::paper()
    };
    cfg.threads = ex.threads();
    let tracing = ex.tracing();

    let interrupt = ex.interrupt();
    let (result, registries) =
        run_table3(&cfg, tracing, interrupt.as_ref()).map_err(|e| BenchError::run("table3", e))?;
    let (procs, row_len) = (cfg.procs, cfg.row_len);

    let cells = vec![
        vec![
            "PSCAN (SCA)".to_string(),
            "-".to_string(),
            result.pscan_cycles.to_string(),
            "1.00".to_string(),
            "1.00".to_string(),
        ],
        vec![
            "mesh".to_string(),
            "1".to_string(),
            result.mesh_cycles_tp1.to_string(),
            f(result.multiplier_tp1, 2),
            f(result.paper_multiplier_tp1, 2),
        ],
        vec![
            "mesh".to_string(),
            "4".to_string(),
            result.mesh_cycles_tp4.to_string(),
            f(result.multiplier_tp4, 2),
            f(result.paper_multiplier_tp4, 2),
        ],
    ];
    ex = ex.table(
        &format!(
            "Table III: transpose writeback, P = {procs}, N = {row_len} ({} samples)",
            procs * row_len
        ),
        &[
            "network",
            "t_p",
            "writeback (cycles)",
            "multiplier",
            "paper multiplier",
        ],
        &cells,
    );
    if !ex.quick() {
        ex = ex.note(format!(
            "paper PSCAN cycles: {} (ours: {})",
            analytic::table3::table3_pscan_cycles(),
            result.pscan_cycles
        ));
    }
    for reg in registries {
        ex = ex.telemetry(reg);
    }
    if tracing {
        ex = ex.telemetry(traced_machine_writeback());
    }
    ex.rows(&result).run()
}
