//! Regenerates **Table III** — transpose completion time in cycles.
//!
//! PSCAN side: both the closed-form Eq. (23)/(24) arithmetic and the actual
//! bus-slot count of an end-to-end SCA writeback on the simulated machine.
//! Mesh side: the cycle-level wormhole simulation at `t_p = 1` and
//! `t_p = 4`.
//!
//! ```text
//! cargo run --release -p bench --bin table3_transpose [--quick] \
//!     [--trace-out trace.json] [--metrics-out metrics.json]
//! ```
//!
//! `--quick` runs a 256-processor / 256-sample-row configuration (the full
//! paper configuration is P = 1024, N = 1024 → 2²⁰ elements and takes a
//! couple of minutes of simulation). With `--trace-out`/`--metrics-out`
//! the mesh runs instrumented (per-router spans, memif/DRAM series) and a
//! small P-sync machine executes the SCA writeback for real so the trace
//! also carries per-CP drive and per-phase spans.

use analytic::table3::{
    table3_pscan_cycles, Table3Params, PAPER_MESH_WRITEBACK_TP1, PAPER_MESH_WRITEBACK_TP4,
};
use bench::{f, BenchError, Experiment};
use emesh::mesh::MeshConfig;
use emesh::workloads::load_transpose;
use pscan::compiler::{GatherSpec, ScatterSpec};
use psync::machine::{Machine, MachineConfig};
use rayon::prelude::*;
use serde::Serialize;
use sim_core::telemetry::Registry;

#[derive(Serialize)]
struct Result {
    procs: usize,
    row_len: usize,
    pscan_cycles: u64,
    mesh_cycles_tp1: u64,
    mesh_cycles_tp4: u64,
    multiplier_tp1: f64,
    multiplier_tp4: f64,
    paper_multiplier_tp1: f64,
    paper_multiplier_tp4: f64,
}

fn mesh_transpose_cycles(
    procs: usize,
    row_len: usize,
    t_p: u64,
    tracing: bool,
    threads: usize,
) -> (u64, Option<Registry>) {
    let cfg = MeshConfig::table3(procs, t_p).with_threads(threads);
    let mut mesh = load_transpose(cfg, procs, row_len);
    if tracing {
        mesh.enable_telemetry();
    }
    let res = mesh.run().expect("transpose deadlocked");
    let s = res.memif_stats[0];
    assert_eq!(s.elements as usize, procs * row_len, "lost elements");
    (res.cycles, mesh.take_telemetry())
}

/// Trace-mode companion: the default PSCAN number is closed-form
/// arithmetic, so to get per-CP drive and per-phase spans into the trace
/// we execute a small SCA delivery → compute → writeback on the simulated
/// machine and harvest its registry.
fn traced_machine_writeback() -> Registry {
    const NODES: usize = 8;
    const BLOCK: usize = 8;
    let words = NODES * BLOCK;
    let mut m = Machine::new(MachineConfig::paper_default(NODES, 2 * words));
    m.enable_telemetry();
    m.head.fill(0, &(0..words as u64).collect::<Vec<_>>());
    let addrs: Vec<u64> = (0..words as u64).collect();
    let delivered = m.scatter_from_memory("deliver", &addrs, &ScatterSpec::blocked(NODES, BLOCK));
    m.compute_phase("compute", |_| 100.0);
    let back: Vec<u64> = (words as u64..2 * words as u64).collect();
    m.gather_to_memory(
        "writeback",
        &GatherSpec::interleaved(NODES, BLOCK, 1),
        &delivered,
        &back,
    );
    m.take_telemetry().expect("telemetry enabled")
}

fn main() -> std::result::Result<(), BenchError> {
    let mut ex = Experiment::new("table3");
    let (procs, row_len) = if ex.quick() { (256, 256) } else { (1024, 1024) };
    let tracing = ex.tracing();
    let threads = ex.threads();

    // PSCAN closed form, scaled to this configuration.
    let params = Table3Params {
        n: row_len as u64,
        p: procs as u64,
        ..Default::default()
    };
    let pscan = params.pscan_cycles();

    // The two t_p points are independent simulations: run them in parallel.
    let mesh_runs: Vec<(u64, Option<Registry>)> = [1u64, 4]
        .into_par_iter()
        .map(|t_p| {
            eprintln!("simulating mesh transpose (P = {procs}, N = {row_len}, t_p = {t_p})...");
            mesh_transpose_cycles(procs, row_len, t_p, tracing && t_p == 1, threads)
        })
        .collect();
    let (mesh1, mesh4) = (mesh_runs[0].0, mesh_runs[1].0);

    let result = Result {
        procs,
        row_len,
        pscan_cycles: pscan,
        mesh_cycles_tp1: mesh1,
        mesh_cycles_tp4: mesh4,
        multiplier_tp1: mesh1 as f64 / pscan as f64,
        multiplier_tp4: mesh4 as f64 / pscan as f64,
        paper_multiplier_tp1: PAPER_MESH_WRITEBACK_TP1 as f64 / table3_pscan_cycles() as f64,
        paper_multiplier_tp4: PAPER_MESH_WRITEBACK_TP4 as f64 / table3_pscan_cycles() as f64,
    };

    let cells = vec![
        vec![
            "PSCAN (SCA)".to_string(),
            "-".to_string(),
            result.pscan_cycles.to_string(),
            "1.00".to_string(),
            "1.00".to_string(),
        ],
        vec![
            "mesh".to_string(),
            "1".to_string(),
            result.mesh_cycles_tp1.to_string(),
            f(result.multiplier_tp1, 2),
            f(result.paper_multiplier_tp1, 2),
        ],
        vec![
            "mesh".to_string(),
            "4".to_string(),
            result.mesh_cycles_tp4.to_string(),
            f(result.multiplier_tp4, 2),
            f(result.paper_multiplier_tp4, 2),
        ],
    ];
    ex = ex.table(
        &format!(
            "Table III: transpose writeback, P = {procs}, N = {row_len} ({} samples)",
            procs * row_len
        ),
        &[
            "network",
            "t_p",
            "writeback (cycles)",
            "multiplier",
            "paper multiplier",
        ],
        &cells,
    );
    if !ex.quick() {
        ex = ex.note(format!(
            "paper PSCAN cycles: {} (ours: {})",
            table3_pscan_cycles(),
            result.pscan_cycles
        ));
    }
    for (_, reg) in mesh_runs {
        if let Some(reg) = reg {
            ex = ex.telemetry(reg);
        }
    }
    if tracing {
        ex = ex.telemetry(traced_machine_writeback());
    }
    ex.rows(&result).run()
}
