//! Regenerates **Fig. 14** — percentage of total runtime spent reorganizing
//! data between the two 1-D FFT passes, vs core count.
//!
//! ```text
//! cargo run --release -p bench --bin fig14_reorg
//! ```

use bench::{f, BenchError, Experiment};
use llmore::sweep::{paper_core_counts, sweep_cores};
use llmore::SystemParams;

fn main() -> Result<(), BenchError> {
    let ex = Experiment::new("fig14");
    let pts = sweep_cores(&SystemParams::default(), &paper_core_counts());
    let cells: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.cores.to_string(),
                f(p.mesh_reorg_frac * 100.0, 1),
                f(p.psync_reorg_frac * 100.0, 1),
            ]
        })
        .collect();
    let last = pts.last().unwrap();
    ex.table(
        "Fig. 14: % of runtime in data reorganization (2-D FFT)",
        &["cores", "mesh (%)", "P-sync (%)"],
        &cells,
    )
    .note(format!(
        "at 4096 cores: mesh {:.1}% vs P-sync {:.1}% (paper: mesh keeps growing, P-sync levels off)",
        last.mesh_reorg_frac * 100.0,
        last.psync_reorg_frac * 100.0
    ))
    .rows(&pts)
    .run()
}
