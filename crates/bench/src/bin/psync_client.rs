//! `psync_client` — command-line client for the `psyncd` experiment
//! daemon (wire schema: DESIGN.md §14).
//!
//! ```text
//! psync_client [--socket PATH] ping
//! psync_client [--socket PATH] status
//! psync_client [--socket PATH] list
//! psync_client [--socket PATH] cancel <job_id>
//! psync_client [--socket PATH] submit (--family F [--preset quick|paper] | --spec JSON)
//!                                     [--timeout-s X] [--tag T]
//! ```
//!
//! Every event the daemon streams back is echoed to stdout, one JSON line
//! each. Exit code: 0 on success (`result`/`pong`/`status`/`jobs`/
//! `cancel_requested`), 1 when the daemon answers with an `error` event or
//! the connection fails, 2 on usage errors.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;

use serde::Value;

const USAGE: &str =
    "usage: psync_client [--socket PATH] <ping|status|list|cancel <job_id>|submit ...>\n\
    submit: --family <table3|perf_mesh|ablate_faults|crosscheck_models> [--preset quick|paper]\n\
            | --spec '<json object>'   plus optional --timeout-s X --tag T";

struct Invocation {
    socket: String,
    request: String,
    /// Submits keep the stream open until a terminal event arrives;
    /// one-shot verbs read a single reply.
    streaming: bool,
}

fn usage_err(msg: impl Into<String>) -> String {
    msg.into()
}

fn parse_args(args: Vec<String>) -> Result<Invocation, String> {
    let mut socket = "psyncd.sock".to_string();
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = it
                    .next()
                    .ok_or_else(|| usage_err("--socket needs a value"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            _ => rest.push(arg),
        }
    }
    let mut it = rest.into_iter();
    let verb = it.next().ok_or_else(|| usage_err("missing verb"))?;
    let (request, streaming) = match verb.as_str() {
        "ping" | "status" | "list" => {
            if it.next().is_some() {
                return Err(usage_err(format!("{verb} takes no arguments")));
            }
            (format!(r#"{{"v":1,"verb":"{verb}"}}"#), false)
        }
        "cancel" => {
            let id = it
                .next()
                .ok_or_else(|| usage_err("cancel needs a job id"))?;
            let id: u64 = id.parse().map_err(|e| format!("cancel job id: {e}"))?;
            if it.next().is_some() {
                return Err(usage_err("cancel takes exactly one job id"));
            }
            (format!(r#"{{"v":1,"verb":"cancel","job_id":{id}}}"#), false)
        }
        "submit" => {
            let mut family = None;
            let mut preset = None;
            let mut spec_json = None;
            let mut timeout_s: Option<f64> = None;
            let mut tag = None;
            while let Some(arg) = it.next() {
                let mut value =
                    |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
                match arg.as_str() {
                    "--family" => family = Some(value("--family")?),
                    "--preset" => preset = Some(value("--preset")?),
                    "--spec" => spec_json = Some(value("--spec")?),
                    "--timeout-s" => {
                        timeout_s = Some(
                            value("--timeout-s")?
                                .parse()
                                .map_err(|e| format!("--timeout-s: {e}"))?,
                        );
                    }
                    "--tag" => tag = Some(value("--tag")?),
                    other => return Err(usage_err(format!("unknown argument: {other}"))),
                }
            }
            let spec = match (family, spec_json) {
                (Some(_), Some(_)) => {
                    return Err(usage_err("--family and --spec are mutually exclusive"));
                }
                (None, None) => {
                    return Err(usage_err("submit needs --family or --spec"));
                }
                (Some(f), None) => {
                    let mut fields = vec![("family".to_string(), Value::Str(f))];
                    if let Some(p) = preset {
                        fields.push(("preset".to_string(), Value::Str(p)));
                    }
                    Value::Object(fields)
                }
                (None, Some(raw)) => {
                    if preset.is_some() {
                        return Err(usage_err("--preset only applies with --family"));
                    }
                    serde_json::from_str(&raw).map_err(|e| format!("--spec: {e}"))?
                }
            };
            let mut fields = vec![
                ("v".to_string(), Value::UInt(1)),
                ("verb".to_string(), Value::Str("submit".to_string())),
                ("spec".to_string(), spec),
            ];
            if let Some(t) = timeout_s {
                fields.push(("timeout_s".to_string(), Value::Float(t)));
            }
            if let Some(t) = tag {
                fields.push(("tag".to_string(), Value::Str(t)));
            }
            let line = serde_json::to_string(&Value::Object(fields))
                .map_err(|e| format!("encode request: {e}"))?;
            (line, true)
        }
        other => return Err(usage_err(format!("unknown verb: {other}"))),
    };
    Ok(Invocation {
        socket,
        request,
        streaming,
    })
}

fn run(inv: &Invocation) -> Result<bool, String> {
    let stream =
        UnixStream::connect(&inv.socket).map_err(|e| format!("connect {}: {e}", inv.socket))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    writeln!(writer, "{}", inv.request).map_err(|e| format!("send request: {e}"))?;
    writer.flush().map_err(|e| format!("send request: {e}"))?;

    let reader = BufReader::new(stream);
    let mut ok = true;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read event: {e}"))?;
        if line.is_empty() {
            continue;
        }
        println!("{line}");
        let event = serde_json::from_str(&line)
            .ok()
            .as_ref()
            .and_then(|v| v.get("event"))
            .and_then(Value::as_str)
            .map(str::to_string);
        match event.as_deref() {
            Some("error") => return Ok(false),
            Some("result") => return Ok(true),
            // accepted / progress / cancel_requested keep streaming.
            _ if inv.streaming => {}
            _ => return Ok(ok),
        }
    }
    // EOF without a terminal event (daemon went away mid-stream).
    if inv.streaming {
        ok = false;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let inv = match parse_args(std::env::args().skip(1).collect()) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("psync_client: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&inv) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("psync_client: {e}");
            ExitCode::FAILURE
        }
    }
}
