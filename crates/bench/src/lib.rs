//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary regenerates one table or figure of the paper through a
//! single [`Experiment`] runner: it declares its name, pushes rendered
//! tables/notes, attaches its result rows and (optionally) a telemetry
//! [`Registry`], and calls [`Experiment::run`]. The runner owns the whole
//! CLI surface —
//!
//! * `--quick` — shrink the expensive configurations,
//! * `--no-json` — skip the `results/<name>.json` write,
//! * `--threads <n>` — worker threads for fabrics that support the
//!   deterministic parallel scheduler (results are bit-identical for any
//!   value; `0` is rejected),
//! * `--trace-out <path>` — write the attached telemetry as Chrome
//!   trace-event JSON (`chrome://tracing` / Perfetto loadable),
//! * `--metrics-out <path>` — write the attached telemetry's metric
//!   series as flat JSON,
//! * `--timeout-s <secs>` — wall-clock deadline for the simulated
//!   workload; an expired deadline surfaces as a structured `Cancelled`
//!   error and a nonzero exit ([`Experiment::interrupt`]),
//! * `--fidelity <policy>` — `analytic`, `cycle_accurate`, `auto`, or
//!   `auto:<ceiling>`: how multi-fidelity harnesses choose between the
//!   validated closed forms and the cycle-accurate fabrics
//!   ([`Experiment::fidelity`]; default `auto`),
//!
//! — so no binary parses arguments or writes JSON on its own. Unknown
//! flags are rejected with a usage message and exit code 2, so a typo
//! cannot silently run the wrong configuration.
//!
//! ```no_run
//! use bench::{BenchError, Experiment};
//!
//! fn main() -> Result<(), BenchError> {
//!     let ex = Experiment::new("demo");
//!     let n = if ex.quick() { 4 } else { 1024 };
//!     let rows = vec![n];
//!     ex.table("Demo", &["n"], &[vec![n.to_string()]])
//!         .rows(&rows)
//!         .run()
//! }
//! ```

use serde::Serialize;
use std::path::PathBuf;

use sim_core::cancel::{Deadline, Interrupt};
use sim_core::telemetry::Registry;

pub mod cache;
pub mod crosscheck;
pub mod fidelity;
pub mod jobs;
pub mod service;
pub mod supervisor;

/// Harness plumbing failure: the experiment ran, but its rows could not be
/// recorded. Binaries propagate this out of `main` for a nonzero exit.
#[derive(Debug)]
pub enum BenchError {
    /// Creating or writing a file under `results/` failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// Serializing the result rows failed.
    Serialize {
        /// The experiment name.
        name: String,
        /// The underlying serializer error.
        source: serde_json::Error,
    },
    /// The simulated workload itself failed or was cancelled — e.g. a mesh
    /// run hit its `--timeout-s` deadline. The source's `Display` carries
    /// the structured cancellation payload.
    Run {
        /// The experiment name.
        name: String,
        /// The underlying fabric error.
        source: Box<dyn std::error::Error + Send + Sync>,
    },
}

impl BenchError {
    /// Wrap a fabric error from the experiment named `name`.
    pub fn run(name: &str, source: impl std::error::Error + Send + Sync + 'static) -> Self {
        BenchError::Run {
            name: name.to_string(),
            source: Box::new(source),
        }
    }
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io { path, source } => {
                write!(f, "result file {}: {source}", path.display())
            }
            BenchError::Serialize { name, source } => {
                write!(f, "serialize {name} rows: {source}")
            }
            BenchError::Run { name, source } => {
                write!(f, "{name} run failed: {source}")
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            BenchError::Serialize { source, .. } => Some(source),
            BenchError::Run { source, .. } => Some(source.as_ref()),
        }
    }
}

/// Parsed harness command line. All binaries share this surface; an
/// unknown argument is a hard error so a typo cannot silently run the
/// wrong configuration.
#[derive(Debug, Clone)]
struct Cli {
    quick: bool,
    no_json: bool,
    threads: usize,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    timeout_s: Option<f64>,
    fidelity: fidelity::FidelityPolicy,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            quick: false,
            no_json: false,
            threads: 1,
            trace_out: None,
            metrics_out: None,
            timeout_s: None,
            fidelity: fidelity::FidelityPolicy::auto(),
        }
    }
}

/// One line per accepted flag, printed on a parse error.
const USAGE: &str = "usage: <bin> [--quick] [--no-json] [--threads <n>] \
                     [--trace-out <path>] [--metrics-out <path>] \
                     [--timeout-s <secs>] [--fidelity <policy>]";

impl Cli {
    fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut cli = Cli::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            // Split `--flag=value` into its parts so both spellings share
            // one code path.
            let (flag, mut inline) = match a.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (a, None),
            };
            let mut value = |it: &mut I::IntoIter| -> Result<String, String> {
                inline
                    .take()
                    .or_else(|| it.next())
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--quick" => cli.quick = true,
                "--no-json" => cli.no_json = true,
                "--threads" => {
                    let v = value(&mut it)?;
                    cli.threads =
                        v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--threads needs a positive integer, got {v:?}")
                        })?;
                }
                "--fidelity" => {
                    let v = value(&mut it)?;
                    cli.fidelity = fidelity::FidelityPolicy::parse(&v)
                        .map_err(|e| format!("--fidelity: {e}"))?;
                }
                "--trace-out" => cli.trace_out = Some(PathBuf::from(value(&mut it)?)),
                "--metrics-out" => cli.metrics_out = Some(PathBuf::from(value(&mut it)?)),
                "--timeout-s" => {
                    let v = value(&mut it)?;
                    cli.timeout_s = Some(
                        v.parse::<f64>()
                            .ok()
                            .filter(|s| s.is_finite() && *s >= 0.0)
                            .ok_or_else(|| {
                                format!("--timeout-s needs a finite non-negative number, got {v:?}")
                            })?,
                    );
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            if inline.is_some() {
                return Err(format!("{flag} does not take a value"));
            }
        }
        Ok(cli)
    }

    /// Parse the process arguments; on error print the problem plus usage
    /// and exit 2 (the conventional bad-usage code).
    fn from_env() -> Self {
        Cli::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
}

/// One experiment run: the single entry point for every harness binary.
///
/// Build it first (`Experiment::new` parses the process arguments), size
/// the workload off [`Experiment::quick`], then chain output sections and
/// result rows and finish with [`Experiment::run`].
#[derive(Debug)]
#[must_use = "an Experiment does nothing until .run() is called"]
pub struct Experiment {
    name: String,
    cli: Cli,
    /// Pre-rendered stdout blocks, printed in order by `run()`.
    sections: Vec<String>,
    /// Result rows, serialized eagerly at `.rows()` time.
    json: Option<Result<String, BenchError>>,
    /// Merged telemetry from instrumented fabrics.
    registry: Registry,
}

impl Experiment {
    /// Start the experiment named `name` (results land in
    /// `results/<name>.json`), parsing the process command line.
    ///
    /// Only call this from a harness binary's `main`: a bad flag prints
    /// usage and exits 2. Embedders (tests, other processes with their own
    /// CLI surface) should use [`Experiment::with_args`] instead, since
    /// the host's arguments won't parse as harness flags.
    pub fn new(name: &str) -> Self {
        Experiment {
            name: name.to_string(),
            cli: Cli::from_env(),
            sections: Vec::new(),
            json: None,
            registry: Registry::new(),
        }
    }

    /// Start the experiment named `name` with an explicit argument list
    /// instead of the process command line.
    ///
    /// # Errors
    /// The unparsed-flag message on an unknown argument, a missing or
    /// malformed value, or `--threads 0`.
    pub fn with_args<I>(name: &str, args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        Ok(Experiment {
            name: name.to_string(),
            cli: Cli::parse(args)?,
            sections: Vec::new(),
            json: None,
            registry: Registry::new(),
        })
    }

    /// Whether `--quick` was passed: harnesses shrink the expensive
    /// configurations.
    pub fn quick(&self) -> bool {
        self.cli.quick
    }

    /// Worker threads requested with `--threads` (default 1). Fabrics with
    /// a deterministic parallel scheduler (`MeshConfig::with_threads`)
    /// produce bit-identical results for any value, so this is purely a
    /// wall-clock knob.
    pub fn threads(&self) -> usize {
        self.cli.threads
    }

    /// Whether `--trace-out` or `--metrics-out` was passed — i.e. whether
    /// this run wants fabrics instrumented. Binaries use this to call
    /// `enable_telemetry()` on their simulators (and, where the default
    /// workload is pure closed-form arithmetic, to run a small simulated
    /// workload that actually produces spans).
    pub fn tracing(&self) -> bool {
        self.cli.trace_out.is_some() || self.cli.metrics_out.is_some()
    }

    /// Wall-clock budget requested with `--timeout-s`, if any.
    pub fn timeout_s(&self) -> Option<f64> {
        self.cli.timeout_s
    }

    /// The fidelity policy requested with `--fidelity` (default
    /// [`fidelity::FidelityPolicy::auto`]). Multi-fidelity harnesses hand
    /// this to [`fidelity::decide`] per sweep point; single-fidelity
    /// binaries ignore it.
    pub fn fidelity(&self) -> fidelity::FidelityPolicy {
        self.cli.fidelity
    }

    /// The interrupt to install on this run's fabrics, or `None` when no
    /// `--timeout-s` was passed (the common, zero-overhead case).
    ///
    /// Each call arms a fresh [`Deadline`] measured from *now*, so build
    /// the interrupt right before the workload starts. Binaries hand it to
    /// `Mesh::set_interrupt` / `Machine::set_interrupt` /
    /// `run_trace_supervised`; a cancellation then propagates out of the
    /// fabric as a structured error the binary wraps with
    /// [`BenchError::run`].
    pub fn interrupt(&self) -> Option<Interrupt> {
        self.cli
            .timeout_s
            .map(|s| Interrupt::new().with_deadline(Deadline::after_secs_f64(s)))
    }

    /// The experiment-wide telemetry registry, for binaries that record
    /// their own series or spans directly.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Append an aligned text table to the printed output.
    pub fn table(mut self, title: &str, header: &[&str], rows: &[Vec<String>]) -> Self {
        self.sections.push(render(title, header, rows));
        self
    }

    /// Append a free-form commentary line to the printed output.
    pub fn note(mut self, line: impl Into<String>) -> Self {
        self.sections.push(line.into());
        self
    }

    /// Attach the result rows recorded to `results/<name>.json`
    /// (serialized immediately; failures surface from [`Experiment::run`]).
    pub fn rows<T: Serialize>(mut self, value: &T) -> Self {
        let name = self.name.clone();
        self.json = Some(
            serde_json::to_string_pretty(value)
                .map_err(|source| BenchError::Serialize { name, source }),
        );
        self
    }

    /// Merge a fabric's telemetry registry (e.g. `mesh.take_telemetry()`)
    /// into the experiment-wide registry.
    pub fn telemetry(self, reg: Registry) -> Self {
        self.registry.merge(reg);
        self
    }

    /// Print every section, write the result rows (unless `--no-json`),
    /// and write the trace/metrics files if requested.
    pub fn run(self) -> Result<(), BenchError> {
        for s in &self.sections {
            println!("{s}");
        }
        if let Some(json) = self.json {
            let json = json?;
            if !self.cli.no_json {
                write_results_file(&self.name, &json)?;
            }
        }
        if let Some(path) = &self.cli.trace_out {
            write_file(path, &self.registry.chrome_trace_json())?;
        }
        if let Some(path) = &self.cli.metrics_out {
            write_file(path, &self.registry.metrics_json())?;
        }
        Ok(())
    }
}

/// Render an aligned text table.
fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&rule);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Where result JSON lands (workspace `results/`, or `PSYNC_RESULTS_DIR`).
fn results_dir_path() -> PathBuf {
    // The harness binaries run from the workspace root via `cargo run`.
    let dir = std::env::var("PSYNC_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Write pre-serialized rows to `results/<name>.json`. Failures propagate —
/// the harness must exit nonzero rather than silently publish a table whose
/// backing JSON was never written.
fn write_results_file(name: &str, json: &str) -> Result<(), BenchError> {
    let dir = results_dir_path();
    std::fs::create_dir_all(&dir).map_err(|source| BenchError::Io {
        path: dir.clone(),
        source,
    })?;
    let path = dir.join(format!("{name}.json"));
    write_file(&path, json)
}

/// Write `contents` to `path` atomically (creating parent directories) and
/// log it.
///
/// The contents land in a sibling temporary file first and are renamed into
/// place, so a reader — or a supervisor killing the process mid-write —
/// never observes a truncated result file: `path` either holds its previous
/// contents or the complete new ones.
fn write_file(path: &std::path::Path, contents: &str) -> Result<(), BenchError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|source| BenchError::Io {
                path: parent.to_path_buf(),
                source,
            })?;
        }
    }
    // Same directory as the destination so the rename cannot cross a
    // filesystem boundary; pid-qualified so concurrent harness processes
    // writing the same file cannot collide on the temporary.
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("out"));
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let io_err = |p: &std::path::Path| {
        let path = p.to_path_buf();
        move |source| BenchError::Io { path, source }
    };
    std::fs::write(&tmp, contents).map_err(io_err(&tmp))?;
    if let Err(source) = std::fs::rename(&tmp, path) {
        // Leave no orphan temporary behind on a failed publish.
        let _ = std::fs::remove_file(&tmp);
        return Err(BenchError::Io {
            path: path.to_path_buf(),
            source,
        });
    }
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// Write `contents` atomically to `<results dir>/<rel>` (e.g.
/// `batch/table3.json`), creating directories as needed; returns the path
/// written. The batch driver uses this for per-job result files that must
/// land beside — not inside — the experiment's own `results/<name>.json`.
pub fn write_results_at(rel: &str, contents: &str) -> Result<PathBuf, BenchError> {
    let path = results_dir_path().join(rel);
    write_file(&path, contents)?;
    Ok(path)
}

/// Render an aligned text table.
#[deprecated(since = "0.1.0", note = "use Experiment::table instead")]
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    render(title, header, rows)
}

/// Where result JSON lands (workspace `results/`).
#[deprecated(since = "0.1.0", note = "Experiment owns the results path now")]
pub fn results_dir() -> PathBuf {
    results_dir_path()
}

/// Serialize experiment rows to `results/<name>.json`.
#[deprecated(
    since = "0.1.0",
    note = "use Experiment::rows + Experiment::run instead"
)]
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Result<(), BenchError> {
    if std::env::args().any(|a| a == "--no-json") {
        return Ok(());
    }
    let s = serde_json::to_string_pretty(value).map_err(|source| BenchError::Serialize {
        name: name.to_string(),
        source,
    })?;
    write_results_file(name, &s)
}

/// `--quick` flag: harnesses shrink the expensive experiments.
#[deprecated(since = "0.1.0", note = "use Experiment::quick instead")]
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Canonical harness surface for glob import: `use bench::prelude::*;`.
pub mod prelude {
    pub use crate::{f, BenchError, Experiment};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render(
            "T",
            &["k", "eta"],
            &[
                vec!["1".into(), "50.00".into()],
                vec!["64".into(), "99.38".into()],
            ],
        );
        assert!(t.contains("k"));
        assert!(t.contains("99.38"));
        // All data lines have the same width.
        let lines: Vec<&str> = t.lines().skip(1).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(409.6, 1), "409.6");
    }

    fn parse(args: &[&str]) -> Result<Cli, String> {
        Cli::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_parses_harness_flags() {
        let cli = parse(&["--quick", "--trace-out", "t.json", "--metrics-out=m.json"]).unwrap();
        assert!(cli.quick);
        assert!(!cli.no_json);
        assert_eq!(cli.threads, 1);
        assert_eq!(
            cli.trace_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );
        assert_eq!(
            cli.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
    }

    #[test]
    fn cli_parses_threads_both_spellings() {
        assert_eq!(parse(&["--threads", "4"]).unwrap().threads, 4);
        assert_eq!(parse(&["--threads=8", "--quick"]).unwrap().threads, 8);
    }

    #[test]
    fn cli_rejects_bad_input() {
        assert!(parse(&["--unknown"]).is_err());
        assert!(parse(&["--threads"]).is_err(), "missing value");
        assert!(parse(&["--threads", "0"]).is_err(), "zero threads");
        assert!(parse(&["--threads", "many"]).is_err(), "non-numeric");
        assert!(parse(&["--trace-out"]).is_err(), "missing path");
        assert!(parse(&["--quick=1"]).is_err(), "flag takes no value");
    }

    #[test]
    fn cli_parses_timeout() {
        assert_eq!(parse(&[]).unwrap().timeout_s, None);
        assert_eq!(parse(&["--timeout-s", "2.5"]).unwrap().timeout_s, Some(2.5));
        assert_eq!(parse(&["--timeout-s=0"]).unwrap().timeout_s, Some(0.0));
    }

    #[test]
    fn cli_rejects_bad_timeout() {
        assert!(parse(&["--timeout-s"]).is_err(), "missing value");
        assert!(parse(&["--timeout-s", "-1"]).is_err(), "negative");
        assert!(parse(&["--timeout-s", "nan"]).is_err(), "NaN");
        assert!(parse(&["--timeout-s", "inf"]).is_err(), "infinite");
        assert!(parse(&["--timeout-s", "soon"]).is_err(), "non-numeric");
    }

    #[test]
    fn cli_parses_fidelity() {
        use fidelity::FidelityPolicy;
        assert_eq!(parse(&[]).unwrap().fidelity, FidelityPolicy::auto());
        assert_eq!(
            parse(&["--fidelity", "analytic"]).unwrap().fidelity,
            FidelityPolicy::Analytic
        );
        assert_eq!(
            parse(&["--fidelity=cycle_accurate"]).unwrap().fidelity,
            FidelityPolicy::CycleAccurate
        );
        assert_eq!(
            parse(&["--fidelity", "auto:0.1"]).unwrap().fidelity,
            FidelityPolicy::Auto {
                max_envelope_rel_err: 0.1
            }
        );
        let err = parse(&["--fidelity", "warp"]).unwrap_err();
        assert!(err.contains("--fidelity"), "{err}");
        assert!(parse(&["--fidelity"]).is_err(), "missing value");
    }

    #[test]
    fn experiment_interrupt_follows_timeout_flag() {
        let ex = Experiment::with_args("t", vec![]).unwrap();
        assert!(ex.interrupt().is_none(), "no flag, no interrupt");
        let ex = Experiment::with_args("t", vec!["--timeout-s".into(), "3600".into()]).unwrap();
        let mut intr = ex.interrupt().expect("flag arms a deadline");
        assert!(intr.is_armed());
        assert_eq!(intr.check(0), None, "an hour out, nothing fires");
        let ex = Experiment::with_args("t", vec!["--timeout-s".into(), "0".into()]).unwrap();
        let mut intr = ex.interrupt().expect("zero timeout still arms");
        assert_eq!(
            intr.check(0),
            Some(sim_core::cancel::CancelCause::DeadlineExceeded),
            "expired deadline fires at the first poll"
        );
    }

    #[test]
    fn write_file_is_atomic_and_leaves_no_temporaries() {
        let dir = std::env::temp_dir().join(format!("bench-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.json");
        write_file(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_file(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.json")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
