//! Shared plumbing for the experiment harness binaries.
//!
//! Every binary regenerates one table or figure of the paper, prints it as
//! an aligned text table, and (unless `--no-json`) writes the raw rows to
//! `results/<name>.json` so EXPERIMENTS.md numbers are reproducible and
//! diffable.

use serde::Serialize;
use std::path::PathBuf;

/// Harness plumbing failure: the experiment ran, but its rows could not be
/// recorded. Binaries propagate this out of `main` for a nonzero exit.
#[derive(Debug)]
pub enum BenchError {
    /// Creating or writing a file under `results/` failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
    /// Serializing the result rows failed.
    Serialize {
        /// The experiment name.
        name: String,
        /// The underlying serializer error.
        source: serde_json::Error,
    },
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::Io { path, source } => {
                write!(f, "result file {}: {source}", path.display())
            }
            BenchError::Serialize { name, source } => {
                write!(f, "serialize {name} rows: {source}")
            }
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Io { source, .. } => Some(source),
            BenchError::Serialize { source, .. } => Some(source),
        }
    }
}

/// Render an aligned text table.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    out.push_str(&rule);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Where result JSON lands (workspace `results/`).
pub fn results_dir() -> PathBuf {
    // The harness binaries run from the workspace root via `cargo run`.
    let dir = std::env::var("PSYNC_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Serialize experiment rows to `results/<name>.json`. Failures propagate —
/// the harness must exit nonzero rather than silently publish a table whose
/// backing JSON was never written. `--no-json` skips the write entirely.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Result<(), BenchError> {
    if std::env::args().any(|a| a == "--no-json") {
        return Ok(());
    }
    let dir = results_dir();
    std::fs::create_dir_all(&dir).map_err(|source| BenchError::Io {
        path: dir.clone(),
        source,
    })?;
    let path = dir.join(format!("{name}.json"));
    let s = serde_json::to_string_pretty(value).map_err(|source| BenchError::Serialize {
        name: name.to_string(),
        source,
    })?;
    std::fs::write(&path, s).map_err(|source| BenchError::Io {
        path: path.clone(),
        source,
    })?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

/// `--quick` flag: harnesses shrink the expensive experiments.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["k", "eta"],
            &[
                vec!["1".into(), "50.00".into()],
                vec!["64".into(), "99.38".into()],
            ],
        );
        assert!(t.contains("k"));
        assert!(t.contains("99.38"));
        // All data lines have the same width.
        let lines: Vec<&str> = t.lines().skip(1).collect();
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(409.6, 1), "409.6");
    }
}
