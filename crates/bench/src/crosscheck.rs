//! Support library for the `crosscheck_models` conformance oracle: the §V
//! closed forms (Eqs. 11/14/20/21/22, Table I/III, Fig. 11) checked
//! differentially against the cycle-accurate fabrics, with every comparison
//! recorded as a perf-gate-compatible row.
//!
//! Each check produces a [`CheckRow`] whose `(policy, threads)` pair is a
//! unique gate key (`"crosscheck:<check>[<point>]"`), whose `cycles` field
//! is a deterministic integer witness of the measured quantity (so the
//! goldens-freshness and perf-gate byte/equality diffs catch any numeric
//! drift), and whose `cycles_per_s` is the only wall-clock-dependent field
//! (scrubbed from goldens, gated loosely in CI).
//!
//! Tolerances are per-check and documented in DESIGN.md §12:
//!
//! * [`TOL_ALGEBRAIC`] — the Model II machine and Eq. 11 perform the same
//!   arithmetic on the same inputs in a different association order, so
//!   they may differ only by f64 rounding accumulated over `k` rounds.
//! * [`TOL_CLOSED_FORM`] — two closed-form expressions of the same
//!   quantity (e.g. Fig. 11's ideal curve vs Eq. 11 at the Eq. 19 balance
//!   point) must agree to f64 round-off.
//! * [`TOL_EQ21_MESH`] — Eq. 21 models the mesh scatter as serial
//!   injection plus one route latency; the simulator adds wormhole stalls
//!   and pipelining overlap the closed form ignores. 35 % brackets the
//!   observed gap across block sizes (see `tests/cross_validation.rs`).
//! * [`TOL_LINE_RATE`] — a gap-free SCA must sustain the WDM plan's
//!   nominal line rate; 5 % covers the fencepost slot at burst edges.

use analytic::model::ModelIi;
use fft::BlockedFft;
use serde::Serialize;

use crate::fidelity::{ValidatedRegion, ValidationEnvelope};

/// Same-arithmetic tolerance: cycle-accurate Model II vs Eq. 11.
pub const TOL_ALGEBRAIC: f64 = 1e-9;
/// Closed-form-vs-closed-form tolerance (pure f64 round-off).
pub const TOL_CLOSED_FORM: f64 = 1e-12;
/// Eq. 21/22 vs the wormhole mesh simulator.
pub const TOL_EQ21_MESH: f64 = 0.35;
/// Sustained SCA line rate vs the WDM plan's nominal bandwidth.
pub const TOL_LINE_RATE: f64 = 0.05;

/// The validation claims this oracle earns: which closed form tracks which
/// fabric, how tightly, and over exactly which configuration region.
///
/// This is the source of truth behind `ci/validation_envelopes.json` and
/// the fidelity engine's analytic fast path (`crate::fidelity`,
/// DESIGN.md §15). Regions are the unions of the grids the oracle actually
/// sweeps — the `crosscheck_models` bin's quick grid (gated per-PR), its
/// full grid (gated nightly), and the unit/differential tests in this
/// crate — with inclusive bounds, so the validated maxima themselves are
/// answerable analytically and anything beyond them is not. Tolerances are
/// the same constants the oracle gates on; loosening one here without the
/// corresponding oracle change fails the byte-equality machine check.
pub fn envelope_catalog() -> Vec<ValidationEnvelope> {
    let model2_region = ValidatedRegion {
        p_min: 4,
        p_max: 16,
        n_min: 16,
        n_max: 1024,
        fault_rate: 0.0,
        policies: vec!["sca".to_string()],
    };
    vec![
        ValidationEnvelope {
            family: "model2_eq11".to_string(),
            check: "eq11_total_time".to_string(),
            rel_err: TOL_ALGEBRAIC,
            region: model2_region.clone(),
            source: "bench::crosscheck::TOL_ALGEBRAIC (conformance CI job)".to_string(),
        },
        ValidationEnvelope {
            family: "model2_eq14".to_string(),
            check: "eq14_efficiency".to_string(),
            rel_err: TOL_ALGEBRAIC,
            region: model2_region,
            source: "bench::crosscheck::TOL_ALGEBRAIC (conformance CI job)".to_string(),
        },
        ValidationEnvelope {
            family: "mesh_eq21".to_string(),
            check: "eq21_delivery".to_string(),
            rel_err: TOL_EQ21_MESH,
            region: ValidatedRegion {
                p_min: 64,
                p_max: 64,
                n_min: 16,
                n_max: 256,
                fault_rate: 0.0,
                policies: vec!["Xy".to_string()],
            },
            source: "bench::crosscheck::TOL_EQ21_MESH (conformance CI job)".to_string(),
        },
        ValidationEnvelope {
            family: "table3_pscan".to_string(),
            check: "table3_cycles".to_string(),
            rel_err: 0.0,
            region: ValidatedRegion {
                p_min: 32,
                p_max: 1024,
                n_min: 32,
                n_max: 1024,
                fault_rate: 0.0,
                policies: vec!["sca".to_string()],
            },
            source: "bench::crosscheck::check_exact_u64 (conformance CI job)".to_string(),
        },
    ]
}

/// One model-vs-simulator comparison, shaped to double as a perf-gate row:
/// `perf_gate.py` keys on `(policy, threads)`, requires `cycles` equality,
/// and ratio-checks `cycles_per_s`.
#[derive(Debug, Clone, Serialize)]
pub struct CheckRow {
    /// Unique gate key, `"crosscheck:<check>[<point>]"`. The prefix keeps
    /// these rows disjoint from the `perf_mesh` policies in the shared
    /// baseline file.
    pub policy: String,
    /// Always 1: the checks are single-threaded by construction.
    pub threads: usize,
    /// Deterministic integer witness of the measured quantity (simulated
    /// cycles, bus slots, or a fixed-point encoding of a closed form).
    pub cycles: u64,
    /// Witness throughput against wall clock — the only volatile field.
    pub cycles_per_s: f64,
    /// Human-readable operating point (`P`, `N`, `k`, rates…).
    pub point: String,
    /// Fabric-side value.
    pub measured: f64,
    /// Closed-form prediction.
    pub predicted: f64,
    /// `|measured − predicted| / |predicted|` (absolute error when the
    /// prediction is zero).
    pub rel_err: f64,
    /// Tolerance this row was held to.
    pub tol: f64,
    /// `rel_err <= tol`.
    pub pass: bool,
}

/// Build a [`CheckRow`] comparing `measured` against `predicted` within
/// `tol`, with `cycles` as the deterministic witness and `wall_s` the
/// elapsed wall-clock the witness is rated against.
pub fn check(
    name: &str,
    point: &str,
    measured: f64,
    predicted: f64,
    tol: f64,
    cycles: u64,
    wall_s: f64,
) -> CheckRow {
    let rel_err = if predicted == 0.0 {
        (measured - predicted).abs()
    } else {
        (measured - predicted).abs() / predicted.abs()
    };
    CheckRow {
        policy: format!("crosscheck:{name}[{point}]"),
        threads: 1,
        cycles,
        cycles_per_s: cycles as f64 / wall_s.max(1e-9),
        point: point.to_string(),
        measured,
        predicted,
        rel_err,
        tol,
        pass: rel_err <= tol,
    }
}

/// [`check`] for exact integer identities (span counts, slot accounting):
/// tolerance zero, witness = the measured integer.
pub fn check_exact_u64(
    name: &str,
    point: &str,
    measured: u64,
    predicted: u64,
    wall_s: f64,
) -> CheckRow {
    check(
        name,
        point,
        measured as f64,
        predicted as f64,
        0.0,
        measured,
        wall_s,
    )
}

/// Encode a closed-form f64 as a deterministic `cycles` witness:
/// nanosecond-scale fixed point, exactly reproducible across runs since
/// every input is deterministic.
pub fn witness(value_seconds: f64) -> u64 {
    (value_seconds * 1e12).round() as u64
}

/// Failure lines for every non-passing row (empty = full conformance).
pub fn failures(rows: &[CheckRow]) -> Vec<String> {
    rows.iter()
        .filter(|r| !r.pass)
        .map(|r| {
            format!(
                "{}: measured {:.6e} vs predicted {:.6e} (rel err {:.3e} > tol {:.1e})",
                r.policy, r.measured, r.predicted, r.rel_err, r.tol
            )
        })
        .collect()
}

/// The Eq. 11/14 prediction for a [`psync::run_model2_rows`] execution.
///
/// `run_model2_rows` reports the overlapped (Model II) and serialized
/// (Model I) wall clocks of the same machine run. The serialized time
/// decomposes exactly as `comm_end + k·t_ck + t_cf` with
/// `comm_end = k · round_secs`, so the per-block delivery time Eq. 11
/// wants, `t_dk = round_secs / P`, is recoverable from the serialized
/// measurement alone — no second simulation needed. The returned
/// prediction is then `ModelIi::total_time() + t_cf` (Eq. 11 covers the
/// `k` overlapped blocks; the final combine `t_cf` is serial in both
/// models) and Eq. 14's efficiency with `t_c = k·t_ck + t_cf`.
pub struct Model2Prediction {
    /// Predicted overlapped wall-clock, seconds (Eq. 11 + `t_cf`).
    pub overlapped_seconds: f64,
    /// Predicted compute efficiency (Eq. 14).
    pub efficiency: f64,
    /// Whether Eq. 15's compute-bound case applies at this point.
    pub compute_bound: bool,
}

/// Predict the Model II overlapped time/efficiency from the serialized
/// measurement — see [`Model2Prediction`].
pub fn predict_model2(
    procs: usize,
    n: usize,
    k: usize,
    serialized_seconds: f64,
) -> Model2Prediction {
    let bf = BlockedFft::new(n, k);
    let mult_s = psync::machine::MachineConfig::paper_default(procs, procs * n)
        .exec
        .mult_ns
        * 1e-9;
    let t_ck = bf.multiplies_per_block() as f64 * mult_s;
    let t_cf = bf.multiplies_final() as f64 * mult_s;
    let round_secs = (serialized_seconds - k as f64 * t_ck - t_cf) / k as f64;
    let model = ModelIi {
        p: procs as u64,
        t_dk: round_secs / procs as f64,
        t_ck,
        k: k as u64,
    };
    let total = model.total_time() + t_cf;
    Model2Prediction {
        overlapped_seconds: total,
        efficiency: (k as f64 * t_ck + t_cf) / total,
        compute_bound: model.is_compute_bound(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_and_failing_rows() {
        let ok = check("eq", "p=1", 1.0005, 1.0, 1e-3, 42, 1.0);
        assert!(ok.pass);
        assert_eq!(ok.policy, "crosscheck:eq[p=1]");
        assert_eq!(ok.cycles, 42);
        let bad = check("eq", "p=2", 2.0, 1.0, 1e-3, 1, 1.0);
        assert!(!bad.pass);
        assert_eq!(failures(&[ok, bad]).len(), 1);
    }

    #[test]
    fn zero_prediction_uses_absolute_error() {
        let r = check("z", "p", 1e-15, 0.0, 1e-12, 0, 1.0);
        assert!(r.pass);
        assert_eq!(r.rel_err, 1e-15);
    }

    #[test]
    fn exact_rows_have_zero_tolerance() {
        assert!(check_exact_u64("n", "p", 7, 7, 1.0).pass);
        assert!(!check_exact_u64("n", "p", 7, 8, 1.0).pass);
    }

    #[test]
    fn witness_is_deterministic_fixed_point() {
        assert_eq!(witness(1.5e-3), 1_500_000_000);
        assert_eq!(witness(0.0), 0);
    }

    #[test]
    fn model2_prediction_matches_machine_exactly() {
        // The machine's overlapped clock and Eq. 11 are the same arithmetic:
        // the prediction recovered from the serialized measurement must land
        // within f64 round-off.
        let (procs, n, k) = (4usize, 64usize, 4usize);
        let rows: Vec<Vec<fft::Complex64>> = (0..procs)
            .map(|p| {
                (0..n)
                    .map(|i| {
                        fft::Complex64::new(
                            ((p * 31 + i) as f64 * 0.1).sin(),
                            ((i * 17 + p) as f64 * 0.05).cos(),
                        )
                    })
                    .collect()
            })
            .collect();
        let run = psync::run_model2_rows(procs, n, k, &rows);
        let pred = predict_model2(procs, n, k, run.serialized_seconds);
        let rel =
            (run.overlapped_seconds - pred.overlapped_seconds).abs() / pred.overlapped_seconds;
        assert!(rel < TOL_ALGEBRAIC, "rel err {rel}");
        let eff_rel = (run.efficiency - pred.efficiency).abs() / pred.efficiency;
        assert!(eff_rel < TOL_ALGEBRAIC, "efficiency rel err {eff_rel}");
    }
}
