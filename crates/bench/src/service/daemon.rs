//! The `psyncd` daemon runtime: accept loop, per-connection handlers, the
//! report reaper, the progress pump, and graceful drain.
//!
//! # Threading model
//!
//! * **accept loop** — [`serve`]'s calling thread; non-blocking accept
//!   polled against the shutdown latch.
//! * **one handler thread per connection** — reads newline-delimited
//!   requests, answers `status`/`list`/`cancel`/`ping` inline, and submits
//!   experiment jobs to the shared [`Supervisor`] pool.
//! * **reaper thread** — drains [`JobReport`]s from the pool and writes
//!   each job's terminal `result`/`error` event to the connection that
//!   submitted it.
//! * **progress pump** — samples every tracked job's [`Progress`] probe
//!   (fed by the fabric's interrupt polls) and streams `progress` events
//!   when the counter advances.
//!
//! All writes to one connection go through a mutex so event lines never
//! interleave. A client that disconnects mid-job loses its event stream
//! but not the job: the result still lands in the cache, so resubmitting
//! the same spec is answered instantly.
//!
//! # Shutdown
//!
//! SIGTERM (install via [`install_sigterm`], or trip the [`serve`]
//! `shutdown` latch directly) stops the accept loop, flips the service
//! into draining (new submits are refused with `shutting_down`), waits for
//! every outstanding job's terminal event to be flushed, shuts the pool
//! down, removes the socket file, and returns so the bin can exit 0.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::Value;
use sim_core::cancel::{CancelToken, Progress};

use crate::cache::ResultCache;
use crate::jobs::supervised_work;
use crate::supervisor::{JobError, JobReport, Supervisor, SupervisorConfig, Work};

use super::protocol::{
    event_accepted, event_cancel_requested, event_error, event_pong, event_progress, event_result,
    event_with, parse_request, ErrorCode, Request,
};

/// Latch set by the SIGTERM handler; polled by every [`serve`] loop (in
/// practice one daemon per process).
static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Route SIGTERM to the graceful-drain latch instead of killing the
/// process (async-signal-safe: the handler is a single atomic store).
pub fn install_sigterm() {
    const SIGTERM_NO: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_: i32) {
        SIGTERM.store(true, Ordering::Release);
    }

    unsafe {
        signal(SIGTERM_NO, on_sigterm as *const () as usize);
    }
}

/// Daemon configuration (the `psyncd` bin's flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Unix socket path to listen on (a stale file is replaced).
    pub socket: PathBuf,
    /// Supervisor worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (beyond it, submits get `queue_full`).
    pub queue_cap: usize,
    /// Result-cache byte budget (`0` = unbounded).
    pub cache_budget_bytes: u64,
    /// Attempts per job (transient-retry policy).
    pub max_attempts: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            socket: PathBuf::from("psyncd.sock"),
            workers: 2,
            queue_cap: 16,
            cache_budget_bytes: 64 << 20,
            max_attempts: 3,
        }
    }
}

/// Serialized writer for one connection: event lines never interleave.
type Writer = Arc<Mutex<UnixStream>>;

fn send(writer: &Writer, line: &str) {
    if let Ok(mut s) = writer.lock() {
        // A disconnected client is not an error worth surfacing: its jobs
        // still run and their results still cache.
        let _ = s.write_all(line.as_bytes());
        let _ = s.write_all(b"\n");
        let _ = s.flush();
    }
}

/// Job lifecycle states published to `status`/`list` (terminal states
/// leave the tracking map instead).
const STATE_QUEUED: u8 = 0;
const STATE_RUNNING: u8 = 1;

/// Per-job state shared between the handler that submitted it, the work
/// closure running it, the progress pump, and the reaper.
struct JobShared {
    name: String,
    family: &'static str,
    tag: Option<String>,
    state: AtomicU8,
    progress: Progress,
    cancel: CancelToken,
    /// Last progress counter streamed to the client (`u64::MAX` = none).
    progress_sent: AtomicU64,
}

struct JobRecord {
    shared: Arc<JobShared>,
    writer: Writer,
}

/// Everything the daemon's threads share.
struct ServiceState {
    sup: Supervisor,
    cache: Arc<ResultCache>,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    /// Jobs accepted but not yet flushed a terminal event.
    outstanding: AtomicU64,
    draining: AtomicBool,
    cfg: ServiceConfig,
}

impl ServiceState {
    fn status_event(&self) -> String {
        let (queued, running) = {
            let jobs = self.jobs.lock().expect("jobs map lock poisoned");
            let queued = jobs
                .values()
                .filter(|r| r.shared.state.load(Ordering::Relaxed) == STATE_QUEUED)
                .count() as u64;
            (queued, jobs.len() as u64 - queued)
        };
        let cs = self.cache.stats();
        event_with(
            "status",
            vec![
                (
                    "jobs",
                    Value::Object(vec![
                        ("queued".to_string(), Value::UInt(queued)),
                        ("running".to_string(), Value::UInt(running)),
                        (
                            "outstanding".to_string(),
                            Value::UInt(self.outstanding.load(Ordering::Relaxed)),
                        ),
                        ("submitted".to_string(), Value::UInt(self.sup.submitted())),
                    ]),
                ),
                (
                    "cache",
                    Value::Object(vec![
                        ("hits".to_string(), Value::UInt(cs.hits)),
                        ("misses".to_string(), Value::UInt(cs.misses)),
                        ("evictions".to_string(), Value::UInt(cs.evictions)),
                        ("entries".to_string(), Value::UInt(cs.entries)),
                        ("bytes".to_string(), Value::UInt(cs.bytes)),
                        (
                            "budget_bytes".to_string(),
                            cs.budget_bytes.map_or(Value::Null, Value::UInt),
                        ),
                    ]),
                ),
                ("workers", Value::UInt(self.cfg.workers as u64)),
                ("respawns", Value::UInt(self.sup.respawns())),
                (
                    "draining",
                    Value::Bool(self.draining.load(Ordering::Relaxed)),
                ),
            ],
        )
    }

    fn list_event(&self) -> String {
        let jobs = self.jobs.lock().expect("jobs map lock poisoned");
        let mut rows: Vec<(u64, Value)> = jobs
            .iter()
            .map(|(&id, r)| {
                let state = match r.shared.state.load(Ordering::Relaxed) {
                    STATE_QUEUED => "queued",
                    _ => "running",
                };
                let mut fields = vec![
                    ("job_id".to_string(), Value::UInt(id)),
                    ("name".to_string(), Value::Str(r.shared.name.clone())),
                    (
                        "family".to_string(),
                        Value::Str(r.shared.family.to_string()),
                    ),
                    ("state".to_string(), Value::Str(state.to_string())),
                    (
                        "cycle".to_string(),
                        r.shared.progress.cycle().map_or(Value::Null, Value::UInt),
                    ),
                ];
                if let Some(t) = &r.shared.tag {
                    fields.push(("tag".to_string(), Value::Str(t.clone())));
                }
                (id, Value::Object(fields))
            })
            .collect();
        drop(jobs);
        rows.sort_by_key(|(id, _)| *id);
        event_with(
            "jobs",
            vec![(
                "jobs",
                Value::Array(rows.into_iter().map(|(_, v)| v).collect()),
            )],
        )
    }
}

/// One connection's request loop.
fn handle_connection(stream: UnixStream, state: Arc<ServiceState>) {
    let writer: Writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_request(&line) {
            Ok(req) => req,
            Err(e) => {
                send(&writer, &event_error(e.code, &e.detail, None));
                continue;
            }
        };
        match req {
            Request::Ping => send(&writer, &event_pong()),
            Request::Status => send(&writer, &state.status_event()),
            Request::List => send(&writer, &state.list_event()),
            Request::Cancel { job_id } => {
                let jobs = state.jobs.lock().expect("jobs map lock poisoned");
                match jobs.get(&job_id) {
                    Some(rec) => {
                        rec.shared.cancel.cancel();
                        drop(jobs);
                        send(&writer, &event_cancel_requested(job_id));
                    }
                    None => {
                        drop(jobs);
                        send(
                            &writer,
                            &event_error(
                                ErrorCode::UnknownJob,
                                &format!(
                                    "job {job_id} is not tracked (unknown or already finished)"
                                ),
                                Some(job_id),
                            ),
                        );
                    }
                }
            }
            Request::Submit {
                spec,
                timeout_s,
                tag,
            } => {
                if state.draining.load(Ordering::Acquire) {
                    send(
                        &writer,
                        &event_error(
                            ErrorCode::ShuttingDown,
                            "daemon is draining after SIGTERM; not accepting new jobs",
                            None,
                        ),
                    );
                    continue;
                }
                let family = spec.family();
                let token = CancelToken::new();
                let progress = Progress::new();
                let work_inner = supervised_work(
                    spec,
                    timeout_s,
                    Arc::clone(&state.cache),
                    Some(&token),
                    Some(progress.clone()),
                );
                // Hold the jobs lock across submit + insert so the reaper
                // (which takes the same lock to find the writer) can never
                // observe a report for a job not yet in the map.
                let mut jobs = state.jobs.lock().expect("jobs map lock poisoned");
                if state.draining.load(Ordering::Acquire) {
                    drop(jobs);
                    send(
                        &writer,
                        &event_error(
                            ErrorCode::ShuttingDown,
                            "daemon is draining after SIGTERM; not accepting new jobs",
                            None,
                        ),
                    );
                    continue;
                }
                // Successful submits are numbered densely, so the count so
                // far is exactly the id the pool will assign.
                let name = format!("{family}-{}", state.sup.submitted());
                let shared = Arc::new(JobShared {
                    name: name.clone(),
                    family,
                    tag,
                    state: AtomicU8::new(STATE_QUEUED),
                    progress,
                    cancel: token,
                    progress_sent: AtomicU64::new(u64::MAX),
                });
                let mark = Arc::clone(&shared);
                let work: Arc<Work> = Arc::new(move |intr| {
                    mark.state.store(STATE_RUNNING, Ordering::Relaxed);
                    work_inner(intr)
                });
                match state.sup.submit(&name, timeout_s, work) {
                    Ok(id) => {
                        state.outstanding.fetch_add(1, Ordering::AcqRel);
                        jobs.insert(
                            id,
                            JobRecord {
                                shared: Arc::clone(&shared),
                                writer: Arc::clone(&writer),
                            },
                        );
                        drop(jobs);
                        send(
                            &writer,
                            &event_accepted(id, family, &name, shared.tag.as_deref()),
                        );
                    }
                    Err(JobError::QueueFull { retry_after_ms }) => {
                        drop(jobs);
                        send(
                            &writer,
                            &event_error(
                                ErrorCode::QueueFull,
                                &format!(
                                    "job queue is full ({} slots); retry after {retry_after_ms} ms",
                                    state.cfg.queue_cap
                                ),
                                None,
                            ),
                        );
                    }
                    Err(e) => {
                        drop(jobs);
                        send(
                            &writer,
                            &event_error(ErrorCode::JobFailed, &e.to_string(), None),
                        );
                    }
                }
            }
        }
    }
}

/// Route one terminal report to the submitting connection.
fn reap(state: &ServiceState, report: JobReport) {
    let record = state
        .jobs
        .lock()
        .expect("jobs map lock poisoned")
        .remove(&report.id);
    let Some(record) = record else {
        // Can't happen (submit inserts before the worker can run), but a
        // missing record must still balance the outstanding counter.
        state.outstanding.fetch_sub(1, Ordering::AcqRel);
        return;
    };
    let tag = record.shared.tag.as_deref();
    let line = match &report.result {
        Ok(s) => event_result(
            report.id,
            s.cached,
            s.fingerprint,
            report.attempts,
            &s.json,
            tag,
        ),
        Err(JobError::Cancelled { detail }) => {
            event_error(ErrorCode::Cancelled, detail, Some(report.id))
        }
        Err(JobError::Panicked { payload }) => event_error(
            ErrorCode::JobFailed,
            &format!("panicked: {payload}"),
            Some(report.id),
        ),
        Err(e) => event_error(ErrorCode::JobFailed, &e.to_string(), Some(report.id)),
    };
    send(&record.writer, &line);
    // Decrement only after the terminal event is flushed: the SIGTERM
    // drain waits on this counter, so every accepted job's outcome is on
    // the wire before the daemon exits.
    state.outstanding.fetch_sub(1, Ordering::AcqRel);
}

/// Stream `progress` events for every tracked job whose probe advanced.
fn pump_progress(state: &ServiceState) {
    let jobs = state.jobs.lock().expect("jobs map lock poisoned");
    let snapshot: Vec<(u64, Arc<JobShared>, Writer)> = jobs
        .iter()
        .map(|(&id, r)| (id, Arc::clone(&r.shared), Arc::clone(&r.writer)))
        .collect();
    drop(jobs);
    for (id, shared, writer) in snapshot {
        if let Some(cycle) = shared.progress.cycle() {
            if shared.progress_sent.swap(cycle, Ordering::Relaxed) != cycle {
                send(&writer, &event_progress(id, cycle));
            }
        }
    }
}

/// Run the daemon on `cfg.socket` until the `shutdown` latch (or the
/// process-wide SIGTERM latch, see [`install_sigterm`]) trips, then drain:
/// refuse new jobs, flush every outstanding job's terminal event, shut the
/// pool down, and remove the socket file.
///
/// # Errors
/// Socket setup failures (bind/permission); everything after the listener
/// is up is handled, not returned.
pub fn serve(cfg: ServiceConfig, shutdown: Arc<AtomicBool>) -> std::io::Result<()> {
    // A stale socket file from a crashed daemon would fail the bind.
    if cfg.socket.exists() {
        std::fs::remove_file(&cfg.socket)?;
    }
    let listener = UnixListener::bind(&cfg.socket)?;
    listener.set_nonblocking(true)?;

    let state = Arc::new(ServiceState {
        sup: Supervisor::new(SupervisorConfig {
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            max_attempts: cfg.max_attempts,
            ..SupervisorConfig::default()
        }),
        cache: Arc::new(if cfg.cache_budget_bytes > 0 {
            ResultCache::with_budget_bytes(cfg.cache_budget_bytes)
        } else {
            ResultCache::new()
        }),
        jobs: Mutex::new(HashMap::new()),
        outstanding: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        cfg: cfg.clone(),
    });

    let stop = Arc::new(AtomicBool::new(false));
    let reaper = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("psyncd-reaper".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    if let Some(report) = state.sup.recv_timeout(Duration::from_millis(50)) {
                        reap(&state, report);
                    }
                }
            })
            .expect("spawn reaper thread")
    };
    let pump = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("psyncd-progress".to_string())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    pump_progress(&state);
                    std::thread::sleep(Duration::from_millis(25));
                }
            })
            .expect("spawn progress pump")
    };

    eprintln!(
        "psyncd: listening on {} ({} worker(s), queue {}, cache budget {} bytes)",
        cfg.socket.display(),
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_budget_bytes,
    );
    let tripped = || SIGTERM.load(Ordering::Acquire) || shutdown.load(Ordering::Acquire);
    while !tripped() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let state = Arc::clone(&state);
                let _ = std::thread::Builder::new()
                    .name("psyncd-conn".to_string())
                    .spawn(move || handle_connection(stream, state));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("psyncd: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }

    // Graceful drain: refuse new submits, then wait for every accepted
    // job's terminal event to be flushed by the reaper.
    state.draining.store(true, Ordering::Release);
    // Barrier: any submit that raced past the draining check has finished
    // inserting once we can take the jobs lock.
    drop(state.jobs.lock().expect("jobs map lock poisoned"));
    eprintln!(
        "psyncd: SIGTERM — draining {} outstanding job(s)...",
        state.outstanding.load(Ordering::Acquire)
    );
    while state.outstanding.load(Ordering::Acquire) > 0 {
        std::thread::sleep(Duration::from_millis(25));
    }
    stop.store(true, Ordering::Release);
    let _ = reaper.join();
    let _ = pump.join();
    state.sup.shutdown();
    let _ = std::fs::remove_file(&cfg.socket);
    eprintln!("psyncd: drained, exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};

    fn temp_socket(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("psyncd-test-{}-{tag}.sock", std::process::id()))
    }

    struct Client {
        writer: UnixStream,
        reader: BufReader<UnixStream>,
    }

    impl Client {
        fn connect(path: &PathBuf) -> Client {
            // The daemon thread needs a moment to bind.
            for _ in 0..200 {
                if let Ok(s) = UnixStream::connect(path) {
                    let reader = BufReader::new(s.try_clone().expect("clone stream"));
                    return Client { writer: s, reader };
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            panic!("daemon did not come up on {}", path.display());
        }

        fn send(&mut self, line: &str) {
            writeln!(self.writer, "{line}").expect("write request");
        }

        fn recv(&mut self) -> Value {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read event");
            assert!(!line.is_empty(), "daemon closed the connection");
            serde_json::from_str(line.trim_end()).expect("event is JSON")
        }

        /// Read events until one of `kinds`; returns it.
        fn recv_until(&mut self, kinds: &[&str]) -> Value {
            loop {
                let ev = self.recv();
                let kind = ev
                    .get("event")
                    .and_then(Value::as_str)
                    .expect("event field")
                    .to_string();
                if kinds.contains(&kind.as_str()) {
                    return ev;
                }
            }
        }
    }

    fn with_daemon(tag: &str, cfg: ServiceConfig, f: impl FnOnce(&PathBuf)) {
        let socket = temp_socket(tag);
        let cfg = ServiceConfig {
            socket: socket.clone(),
            ..cfg
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let latch = Arc::clone(&shutdown);
        let daemon = std::thread::spawn(move || serve(cfg, latch));
        f(&socket);
        shutdown.store(true, Ordering::Release);
        daemon.join().expect("daemon thread").expect("serve ok");
        assert!(!socket.exists(), "socket file removed on drain");
    }

    #[test]
    fn ping_status_and_errors_over_the_socket() {
        with_daemon("ping", ServiceConfig::default(), |socket| {
            let mut c = Client::connect(socket);
            c.send(r#"{"v":1,"verb":"ping"}"#);
            assert_eq!(c.recv().get("event").and_then(Value::as_str), Some("pong"));

            c.send("garbage");
            let ev = c.recv();
            assert_eq!(ev.get("code").and_then(Value::as_str), Some("bad_json"));

            c.send(r#"{"v":9,"verb":"ping"}"#);
            let ev = c.recv();
            assert_eq!(ev.get("code").and_then(Value::as_str), Some("bad_version"));

            c.send(r#"{"v":1,"verb":"cancel","job_id":42}"#);
            let ev = c.recv();
            assert_eq!(ev.get("code").and_then(Value::as_str), Some("unknown_job"));

            c.send(r#"{"v":1,"verb":"status"}"#);
            let ev = c.recv();
            assert_eq!(ev.get("event").and_then(Value::as_str), Some("status"));
            assert_eq!(
                ev.get("cache")
                    .and_then(|c| c.get("misses"))
                    .and_then(Value::as_u64),
                Some(0)
            );
            assert_eq!(ev.get("draining").and_then(Value::as_bool), Some(false));
        });
    }

    #[test]
    fn submit_runs_then_identical_resubmit_hits_the_cache() {
        with_daemon("cache", ServiceConfig::default(), |socket| {
            let mut c = Client::connect(socket);
            let submit = r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":16,"row_len":8},"tag":"a"}"#;
            c.send(submit);
            let acc = c.recv_until(&["accepted", "error"]);
            assert_eq!(acc.get("event").and_then(Value::as_str), Some("accepted"));
            assert_eq!(acc.get("family").and_then(Value::as_str), Some("table3"));
            let first = c.recv_until(&["result", "error"]);
            assert_eq!(first.get("event").and_then(Value::as_str), Some("result"));
            assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
            assert_eq!(first.get("tag").and_then(Value::as_str), Some("a"));

            c.send(submit);
            c.recv_until(&["accepted"]);
            let second = c.recv_until(&["result", "error"]);
            assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));
            // Byte-identical result document and fingerprint.
            assert_eq!(
                serde_json::to_string(first.get("result").unwrap()).unwrap(),
                serde_json::to_string(second.get("result").unwrap()).unwrap(),
            );
            assert_eq!(
                first.get("fingerprint").and_then(Value::as_str),
                second.get("fingerprint").and_then(Value::as_str),
            );

            c.send(r#"{"v":1,"verb":"status"}"#);
            let status = c.recv_until(&["status"]);
            let cache = status.get("cache").expect("cache stats");
            assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
            assert!(cache.get("hits").and_then(Value::as_u64).unwrap_or(0) >= 1);
        });
    }

    #[test]
    fn cancel_interrupts_a_running_job() {
        // One worker so the job is alone; a paper-sized mesh gives the
        // cancel plenty of simulation to land in.
        let cfg = ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        with_daemon("cancel", cfg, |socket| {
            let mut c = Client::connect(socket);
            c.send(
                r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":256,"row_len":256}}"#,
            );
            let acc = c.recv_until(&["accepted"]);
            let id = acc.get("job_id").and_then(Value::as_u64).expect("job id");
            c.send(&format!(r#"{{"v":1,"verb":"cancel","job_id":{id}}}"#));
            let mut saw_cancel_ack = false;
            let terminal = loop {
                let ev = c.recv();
                match ev.get("event").and_then(Value::as_str) {
                    Some("cancel_requested") => saw_cancel_ack = true,
                    Some("result") | Some("error") => break ev,
                    _ => {}
                }
            };
            assert!(saw_cancel_ack);
            assert_eq!(
                terminal.get("event").and_then(Value::as_str),
                Some("error"),
                "cancelled job must not produce a result"
            );
            assert_eq!(
                terminal.get("code").and_then(Value::as_str),
                Some("cancelled")
            );
            assert!(terminal
                .get("detail")
                .and_then(Value::as_str)
                .is_some_and(|d| d.contains("Cancelled")));
        });
    }

    #[test]
    fn drain_flushes_inflight_results_before_exit() {
        let socket = temp_socket("drain");
        let cfg = ServiceConfig {
            socket: socket.clone(),
            workers: 1,
            ..ServiceConfig::default()
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let latch = Arc::clone(&shutdown);
        let daemon = std::thread::spawn(move || serve(cfg, latch));
        let mut c = Client::connect(&socket);
        c.send(r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":16,"row_len":8}}"#);
        c.recv_until(&["accepted"]);
        // Trip the latch while the job is (likely) still running: the
        // terminal event must still arrive before the daemon exits.
        shutdown.store(true, Ordering::Release);
        let terminal = c.recv_until(&["result", "error"]);
        assert_eq!(
            terminal.get("event").and_then(Value::as_str),
            Some("result")
        );
        daemon.join().expect("daemon thread").expect("serve ok");
        // Submits after the drain are refused (fresh connection: the old
        // socket is gone).
        assert!(!socket.exists());
    }
}
