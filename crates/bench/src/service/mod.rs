//! The experiment service: a long-running daemon (`psyncd`) that serves
//! experiment requests over a Unix domain socket, routing jobs through the
//! [`crate::supervisor`] worker pool and keeping the [`crate::cache`]
//! exact result cache warm across batches.
//!
//! The module splits into:
//!
//! * [`protocol`] — the versioned newline-delimited JSON wire format:
//!   request parsing (tolerant of unknown fields), event construction, and
//!   the machine-readable error-code vocabulary. Pure functions, fully
//!   unit-tested without a socket.
//! * [`daemon`] — the runtime: accept loop, per-connection handler
//!   threads, the report reaper, the progress pump, and SIGTERM graceful
//!   drain. The `psyncd` bin is a thin argument parser over
//!   [`daemon::serve`].
//!
//! The wire schema is documented in DESIGN.md §14; EXPERIMENTS.md has
//! client recipes.

pub mod daemon;
pub mod protocol;
