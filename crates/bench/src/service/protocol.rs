//! The `psyncd` wire protocol: versioned newline-delimited JSON.
//!
//! Every request and event is one JSON object on one line. Requests carry
//! a `v` version field ([`WIRE_VERSION`]) and a `verb`; unknown fields are
//! tolerated everywhere (a newer client can decorate requests without
//! breaking an older daemon), while unknown *verbs* and version mismatches
//! are structured errors. Events echo the version and carry an `event`
//! discriminator; failures carry a machine-readable [`ErrorCode`] plus a
//! human-readable detail.
//!
//! ```text
//! → {"v":1,"verb":"submit","spec":{"family":"table3","procs":16,"row_len":8}}
//! ← {"v":1,"event":"accepted","job_id":0,"family":"table3","name":"table3-0"}
//! ← {"v":1,"event":"progress","job_id":0,"cycle":512}
//! ← {"v":1,"event":"result","job_id":0,"cached":false,"fingerprint":"fnv1a64:…","attempts":1,"result":{…}}
//! ```
//!
//! The full schema is documented in DESIGN.md §14. Everything here is pure
//! string/tree manipulation, unit-tested without a socket.

use serde::Value;

use crate::cache::fingerprint_hex;
use crate::jobs::JobSpec;

/// Protocol version: bumped on any incompatible change to the request or
/// event shapes. A request with a different `v` is rejected with
/// [`ErrorCode::BadVersion`] naming both versions.
pub const WIRE_VERSION: u64 = 1;

/// Machine-readable failure vocabulary carried by `error` events. The wire
/// spelling ([`ErrorCode::as_str`]) is a stable API: clients dispatch on
/// it, so variants are append-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    BadJson,
    /// The request's `v` field is missing or not [`WIRE_VERSION`].
    BadVersion,
    /// The request's `verb` is missing or not in the vocabulary.
    UnknownVerb,
    /// The submit's `spec` (or another request field) failed validation.
    BadSpec,
    /// `cancel` named a job the daemon is not tracking (unknown id, or the
    /// job already reached a terminal event).
    UnknownJob,
    /// The supervisor's bounded queue is full; retry after the suggested
    /// delay in the detail.
    QueueFull,
    /// The daemon is draining after SIGTERM and accepts no new work.
    ShuttingDown,
    /// The job was cancelled (deadline, `cancel` verb, or daemon drain).
    Cancelled,
    /// The job panicked or failed on every attempt; detail has the cause.
    JobFailed,
}

impl ErrorCode {
    /// The stable wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::BadSpec => "bad_spec",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::JobFailed => "job_failed",
        }
    }
}

/// A structured request failure: code plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The machine-readable code.
    pub code: ErrorCode,
    /// What went wrong, for humans.
    pub detail: String,
}

impl ProtocolError {
    fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        ProtocolError {
            code,
            detail: detail.into(),
        }
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run an experiment; the daemon streams `accepted` → `progress`* →
    /// `result`/`error` back on the submitting connection.
    Submit {
        /// The validated experiment spec.
        spec: JobSpec,
        /// Optional per-attempt deadline, seconds.
        timeout_s: Option<f64>,
        /// Optional opaque client tag, echoed on `accepted` and `result`.
        tag: Option<String>,
    },
    /// Daemon-wide counters: job states, cache stats, workers, drain flag.
    Status,
    /// The jobs the daemon is currently tracking (queued or running).
    List,
    /// Request cooperative cancellation of a tracked job.
    Cancel {
        /// The id from that job's `accepted` event.
        job_id: u64,
    },
    /// Liveness probe; answered with `pong`.
    Ping,
}

/// Parse one request line. Unknown fields anywhere are ignored; structural
/// problems map to the [`ErrorCode`] vocabulary.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let v = serde_json::from_str(line)
        .map_err(|e| ProtocolError::new(ErrorCode::BadJson, e.to_string()))?;
    if v.as_object().is_none() {
        return Err(ProtocolError::new(
            ErrorCode::BadJson,
            "request must be a JSON object",
        ));
    }
    match v.get("v").and_then(Value::as_u64) {
        Some(WIRE_VERSION) => {}
        Some(other) => {
            return Err(ProtocolError::new(
                ErrorCode::BadVersion,
                format!("protocol version {other} not supported (daemon speaks {WIRE_VERSION})"),
            ))
        }
        None => {
            return Err(ProtocolError::new(
                ErrorCode::BadVersion,
                format!(
                    "request is missing the integer version field \"v\" (expected {WIRE_VERSION})"
                ),
            ))
        }
    }
    let verb = v.get("verb").and_then(Value::as_str).ok_or_else(|| {
        ProtocolError::new(
            ErrorCode::UnknownVerb,
            "request is missing the \"verb\" string",
        )
    })?;
    match verb {
        "submit" => {
            let spec_value = v.get("spec").ok_or_else(|| {
                ProtocolError::new(ErrorCode::BadSpec, "submit requires a \"spec\" object")
            })?;
            let spec = JobSpec::from_value(spec_value)
                .map_err(|detail| ProtocolError::new(ErrorCode::BadSpec, detail))?;
            let timeout_s = match v.get("timeout_s") {
                None | Some(Value::Null) => None,
                Some(t) => {
                    let secs = t
                        .as_f64()
                        .filter(|s| s.is_finite() && *s >= 0.0)
                        .ok_or_else(|| {
                            ProtocolError::new(
                                ErrorCode::BadSpec,
                                "timeout_s must be a finite non-negative number",
                            )
                        })?;
                    Some(secs)
                }
            };
            let tag = match v.get("tag") {
                None | Some(Value::Null) => None,
                Some(t) => Some(
                    t.as_str()
                        .ok_or_else(|| {
                            ProtocolError::new(ErrorCode::BadSpec, "tag must be a string")
                        })?
                        .to_string(),
                ),
            };
            Ok(Request::Submit {
                spec,
                timeout_s,
                tag,
            })
        }
        "status" => Ok(Request::Status),
        "list" => Ok(Request::List),
        "cancel" => {
            let job_id = v.get("job_id").and_then(Value::as_u64).ok_or_else(|| {
                ProtocolError::new(
                    ErrorCode::BadSpec,
                    "cancel requires a non-negative integer \"job_id\"",
                )
            })?;
            Ok(Request::Cancel { job_id })
        }
        "ping" => Ok(Request::Ping),
        other => Err(ProtocolError::new(
            ErrorCode::UnknownVerb,
            format!("unknown verb {other:?} (expected submit/status/list/cancel/ping)"),
        )),
    }
}

/// Build a one-line event with the standard `v`/`event` envelope plus
/// `fields`, in order.
pub fn event_with(event: &str, fields: Vec<(&str, Value)>) -> String {
    let mut pairs = vec![
        ("v".to_string(), Value::UInt(WIRE_VERSION)),
        ("event".to_string(), Value::Str(event.to_string())),
    ];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    serde_json::to_string(&Value::Object(pairs)).expect("events serialize")
}

/// `accepted`: the daemon took the job; `job_id` names it from here on.
pub fn event_accepted(job_id: u64, family: &str, name: &str, tag: Option<&str>) -> String {
    let mut fields = vec![
        ("job_id", Value::UInt(job_id)),
        ("family", Value::Str(family.to_string())),
        ("name", Value::Str(name.to_string())),
    ];
    if let Some(t) = tag {
        fields.push(("tag", Value::Str(t.to_string())));
    }
    event_with("accepted", fields)
}

/// `progress`: the running fabric's latest polled progress counter.
pub fn event_progress(job_id: u64, cycle: u64) -> String {
    event_with(
        "progress",
        vec![
            ("job_id", Value::UInt(job_id)),
            ("cycle", Value::UInt(cycle)),
        ],
    )
}

/// `result`: terminal success. `result_json` is the cached/deterministic
/// result document; it is re-encoded compactly so the event stays one
/// line. Identical source bytes produce identical event lines — the
/// byte-identity the integration test asserts for cache hits.
pub fn event_result(
    job_id: u64,
    cached: bool,
    fingerprint: u64,
    attempts: u32,
    result_json: &str,
    tag: Option<&str>,
) -> String {
    let result =
        serde_json::from_str(result_json).unwrap_or_else(|_| Value::Str(result_json.to_string()));
    let mut fields = vec![
        ("job_id", Value::UInt(job_id)),
        ("cached", Value::Bool(cached)),
        ("fingerprint", Value::Str(fingerprint_hex(fingerprint))),
        ("attempts", Value::UInt(u64::from(attempts))),
        ("result", result),
    ];
    if let Some(t) = tag {
        fields.push(("tag", Value::Str(t.to_string())));
    }
    event_with("result", fields)
}

/// `error`: a request or job failure, with the machine-readable code.
pub fn event_error(code: ErrorCode, detail: &str, job_id: Option<u64>) -> String {
    let mut fields = vec![("code", Value::Str(code.as_str().to_string()))];
    if let Some(id) = job_id {
        fields.push(("job_id", Value::UInt(id)));
    }
    fields.push(("detail", Value::Str(detail.to_string())));
    event_with("error", fields)
}

/// `cancel_requested`: the cancel verb was accepted; the job's terminal
/// `error` (code `cancelled`) follows on the submitting connection.
pub fn event_cancel_requested(job_id: u64) -> String {
    event_with("cancel_requested", vec![("job_id", Value::UInt(job_id))])
}

/// `pong`: liveness reply.
pub fn event_pong() -> String {
    event_with("pong", Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::Table3Spec;

    #[test]
    fn submit_round_trips_spec_timeout_and_tag() {
        let req = parse_request(
            r#"{"v":1,"verb":"submit","spec":{"family":"table3","procs":16,"row_len":8},"timeout_s":2.5,"tag":"ci"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Submit {
                spec: JobSpec::Table3(Table3Spec {
                    procs: 16,
                    row_len: 8,
                    threads: 1
                }),
                timeout_s: Some(2.5),
                tag: Some("ci".to_string()),
            }
        );
    }

    #[test]
    fn bare_verbs_parse() {
        for (line, want) in [
            (r#"{"v":1,"verb":"status"}"#, Request::Status),
            (r#"{"v":1,"verb":"list"}"#, Request::List),
            (r#"{"v":1,"verb":"ping"}"#, Request::Ping),
            (
                r#"{"v":1,"verb":"cancel","job_id":7}"#,
                Request::Cancel { job_id: 7 },
            ),
        ] {
            assert_eq!(parse_request(line).unwrap(), want, "{line}");
        }
    }

    #[test]
    fn unknown_fields_are_tolerated_everywhere() {
        let req =
            parse_request(r#"{"v":1,"verb":"ping","future":"stuff","nested":{"deep":[1,2]}}"#)
                .unwrap();
        assert_eq!(req, Request::Ping);
        let req = parse_request(
            r#"{"v":1,"verb":"submit","spec":{"family":"table3","frobnicate":true},"shiny":1}"#,
        )
        .unwrap();
        assert!(matches!(req, Request::Submit { .. }));
    }

    #[test]
    fn errors_carry_the_machine_readable_code() {
        for (line, code) in [
            ("not json at all", ErrorCode::BadJson),
            ("[1,2,3]", ErrorCode::BadJson),
            (r#"{"verb":"ping"}"#, ErrorCode::BadVersion),
            (r#"{"v":99,"verb":"ping"}"#, ErrorCode::BadVersion),
            (r#"{"v":1}"#, ErrorCode::UnknownVerb),
            (r#"{"v":1,"verb":"frob"}"#, ErrorCode::UnknownVerb),
            (r#"{"v":1,"verb":"submit"}"#, ErrorCode::BadSpec),
            (
                r#"{"v":1,"verb":"submit","spec":{"family":"nope"}}"#,
                ErrorCode::BadSpec,
            ),
            (
                r#"{"v":1,"verb":"submit","spec":{"family":"table3"},"timeout_s":-1}"#,
                ErrorCode::BadSpec,
            ),
            (
                r#"{"v":1,"verb":"submit","spec":{"family":"table3"},"tag":9}"#,
                ErrorCode::BadSpec,
            ),
            (r#"{"v":1,"verb":"cancel"}"#, ErrorCode::BadSpec),
            (r#"{"v":1,"verb":"cancel","job_id":-1}"#, ErrorCode::BadSpec),
        ] {
            let err = parse_request(line).expect_err(line);
            assert_eq!(err.code, code, "{line}: {}", err.detail);
            assert!(!err.detail.is_empty());
        }
    }

    #[test]
    fn event_lines_are_single_line_versioned_json() {
        let events = [
            event_accepted(3, "table3", "table3-3", Some("t")),
            event_progress(3, 512),
            event_result(3, true, 0xff, 1, "{\n  \"x\": 1\n}", None),
            event_error(ErrorCode::QueueFull, "retry after 10 ms", None),
            event_cancel_requested(3),
            event_pong(),
        ];
        for line in &events {
            assert!(!line.contains('\n'), "{line}");
            let v = serde_json::from_str(line).expect("events are valid JSON");
            assert_eq!(v.get("v").and_then(Value::as_u64), Some(WIRE_VERSION));
            assert!(v.get("event").and_then(Value::as_str).is_some());
        }
    }

    #[test]
    fn result_event_embeds_the_document_compactly_and_reproducibly() {
        let pretty = "{\n  \"procs\": 16,\n  \"cycles\": 99\n}";
        let a = event_result(0, false, 0xaa, 1, pretty, None);
        let b = event_result(0, false, 0xaa, 1, pretty, None);
        assert_eq!(a, b, "same source bytes, same event line");
        assert!(a.contains(r#""result":{"procs":16,"cycles":99}"#), "{a}");
        assert!(a.contains(r#""fingerprint":"fnv1a64:00000000000000aa""#));
    }

    #[test]
    fn error_codes_spell_stably() {
        assert_eq!(ErrorCode::BadJson.as_str(), "bad_json");
        assert_eq!(ErrorCode::ShuttingDown.as_str(), "shutting_down");
        assert_eq!(ErrorCode::JobFailed.as_str(), "job_failed");
        let line = event_error(ErrorCode::UnknownJob, "job 9 is not tracked", Some(9));
        assert!(line.contains(r#""code":"unknown_job""#));
        assert!(line.contains(r#""job_id":9"#));
    }
}
