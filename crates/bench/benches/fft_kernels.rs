//! Criterion micro-benchmarks of the FFT workload kernels (the compute side
//! of Tables I/II): monolithic radix-2, the Fig. 10 blocked decomposition
//! across k, and the full 2-D flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fft::fft2d::{Fft2d, Matrix};
use fft::{BlockedFft, Complex64, Radix2Plan};
use std::hint::black_box;

fn signal(n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|i| Complex64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_radix2(c: &mut Criterion) {
    let mut g = c.benchmark_group("radix2");
    for n in [256usize, 1024, 4096] {
        let plan = Radix2Plan::new(n);
        let x = signal(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut y = x.clone();
                plan.forward(&mut y);
                black_box(y)
            })
        });
    }
    g.finish();
}

fn bench_blocked(c: &mut Criterion) {
    // Table I's k sweep: same 1024-point transform, k-way delivery.
    let mut g = c.benchmark_group("blocked_fft_1024");
    let x = signal(1024);
    for k in [1usize, 8, 64] {
        let bf = BlockedFft::new(1024, k);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(bf.run(&x)))
        });
    }
    g.finish();
}

fn bench_fft2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft2d");
    g.sample_size(10);
    for n in [64usize, 256] {
        let m = Matrix::from_fn(n, n, |r, cc| {
            Complex64::new((r as f64 * 0.3).sin(), (cc as f64 * 0.7).cos())
        });
        let plan = Fft2d::new(n, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan.forward(&m)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_radix2, bench_blocked, bench_fft2d);
criterion_main!(benches);
