//! Criterion benchmarks of the Fig. 5 energy models: the photonic link
//! budget solve and a small cycle-level mesh gather with energy accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emesh::energy::OrionParams;
use emesh::mesh::{MeshConfig, RoutingPolicy};
use emesh::topology::{MemifPlacement, Topology};
use emesh::workloads::load_gather_energy;
use photonics::energy::PhotonicEnergyModel;
use std::hint::black_box;

fn bench_photonic_energy_model(c: &mut Criterion) {
    let m = PhotonicEnergyModel::default();
    let mut g = c.benchmark_group("photonic_energy");
    for nodes in [64usize, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(m.sca_pj_per_bit(20.0, n)))
        });
    }
    g.finish();
}

fn bench_mesh_gather_energy(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh_gather_energy_64");
    g.sample_size(10);
    g.bench_function("64_nodes_32_words", |b| {
        b.iter(|| {
            let cfg = MeshConfig {
                topology: Topology::square(64, MemifPlacement::FourCorners),
                t_r: 1,
                policy: RoutingPolicy::Xy,
                memif: Default::default(),
                buffer_depth: 2,
                max_cycles: 1 << 30,
                threads: 1,
            };
            let mut mesh = load_gather_energy(cfg, 32);
            let res = mesh.run().unwrap();
            black_box(OrionParams::default().pj_per_payload_bit(&res.energy, 64, 64 * 32 * 64))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_photonic_energy_model,
    bench_mesh_gather_energy
);
criterion_main!(benches);
