//! Criterion benchmarks of the assembled P-sync machine: the end-to-end
//! distributed 2-D FFT (per-phase event simulation + real numerics) and the
//! Model II overlapped row-FFT phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fft::fft2d::Matrix;
use fft::Complex64;
use psync::model2::run_model2_rows;
use psync::run_fft2d;
use std::hint::black_box;

fn input(n: usize) -> Matrix {
    Matrix::from_fn(n, n, |r, c| {
        Complex64::new((r as f64 * 0.3).sin(), (c as f64 * 0.7).cos())
    })
}

fn bench_machine_fft2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_fft2d");
    g.sample_size(10);
    for (n, procs) in [(32usize, 8usize), (64, 16)] {
        let m = input(n);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{n}_p{procs}")),
            &procs,
            |b, &procs| b.iter(|| black_box(run_fft2d(procs, &m))),
        );
    }
    g.finish();
}

fn bench_model2_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_model2_rows");
    g.sample_size(10);
    let procs = 8;
    let n = 256;
    let rows: Vec<Vec<Complex64>> = (0..procs)
        .map(|p| {
            (0..n)
                .map(|i| Complex64::new((p * 31 + i) as f64 * 0.01, 0.0))
                .collect()
        })
        .collect();
    for k in [1usize, 16] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| black_box(run_model2_rows(procs, n, k, &rows)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_machine_fft2d, bench_model2_rows);
criterion_main!(benches);
