//! Criterion benchmarks of the PSCAN simulator itself: CP compilation and
//! SCA / SCA⁻¹ execution across node counts and interleave granularities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pscan::compiler::{CpCompiler, GatherSpec, ScatterSpec};
use pscan::network::{Pscan, PscanConfig};
use std::hint::black_box;

fn bench_cp_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("cp_compile");
    for nodes in [64usize, 1024] {
        // Fine interleave: worst case for the run coalescer.
        let spec = GatherSpec::interleaved(nodes, 1, 32);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(CpCompiler.compile_gather(&spec, n)))
        });
    }
    g.finish();
}

fn bench_sca_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("sca_gather");
    g.sample_size(10);
    for (nodes, slots_per) in [(64usize, 256usize), (256, 64)] {
        let p = Pscan::new(PscanConfig {
            nodes,
            ..Default::default()
        });
        let spec = GatherSpec::interleaved(nodes, 1, slots_per);
        let data: Vec<Vec<u64>> = (0..nodes).map(|n| vec![n as u64; slots_per]).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}x{slots_per}")),
            &nodes,
            |b, _| b.iter(|| black_box(p.gather(&spec, &data).unwrap())),
        );
    }
    g.finish();
}

fn bench_sca_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("sca_scatter");
    g.sample_size(10);
    let nodes = 256;
    let p = Pscan::new(PscanConfig {
        nodes,
        ..Default::default()
    });
    let spec = ScatterSpec::blocked(nodes, 64);
    let burst: Vec<u64> = (0..(nodes * 64) as u64).collect();
    g.bench_function("256x64_blocked", |b| {
        b.iter(|| black_box(p.scatter(&spec, &burst).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cp_compile,
    bench_sca_gather,
    bench_sca_scatter
);
criterion_main!(benches);
