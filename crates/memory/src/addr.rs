//! Linear word address ↔ (bank, row, column) mapping.
//!
//! The map is row-interleaved across banks: consecutive rows land in
//! consecutive banks, so a sequential stream (the P-sync head node's access
//! pattern) ping-pongs banks and can hide activate latency, while a strided
//! stream (a naive mesh transpose hitting column order) thrashes rows within
//! a bank — exactly the asymmetry the paper exploits.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;

/// A decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decoded {
    /// Bank index.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (bus-word) index within the row.
    pub col: u64,
}

/// Address map for a given configuration and word size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AddrMap {
    cfg: DramConfig,
    /// Bits per addressed word (e.g. 64 for an FFT sample bus word).
    pub word_bits: u64,
}

impl AddrMap {
    /// Map for `cfg` addressing words of `word_bits`.
    pub fn new(cfg: DramConfig, word_bits: u64) -> Self {
        cfg.validate().expect("invalid DRAM config");
        assert!(
            cfg.row_bits.is_multiple_of(word_bits),
            "row must hold an integer number of words"
        );
        AddrMap { cfg, word_bits }
    }

    /// Words per row for this word size.
    pub fn words_per_row(&self) -> u64 {
        self.cfg.row_bits / self.word_bits
    }

    /// Decode a linear word address.
    pub fn decode(&self, word_addr: u64) -> Decoded {
        let wpr = self.words_per_row();
        let global_row = word_addr / wpr;
        Decoded {
            bank: (global_row % self.cfg.banks as u64) as usize,
            row: global_row / self.cfg.banks as u64,
            col: word_addr % wpr,
        }
    }

    /// Re-encode a decoded coordinate to its linear word address.
    pub fn encode(&self, d: Decoded) -> u64 {
        let wpr = self.words_per_row();
        let global_row = d.row * self.cfg.banks as u64 + d.bank as u64;
        global_row * wpr + d.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddrMap {
        AddrMap::new(DramConfig::default(), 64)
    }

    #[test]
    fn sequential_addresses_share_rows_then_rotate_banks() {
        let m = map();
        // Words 0..32 are one row in bank 0.
        for w in 0..32 {
            let d = m.decode(w);
            assert_eq!((d.bank, d.row), (0, 0), "word {w}");
            assert_eq!(d.col, w);
        }
        // Word 32 starts the next global row, which lands in bank 1.
        let d = m.decode(32);
        assert_eq!((d.bank, d.row, d.col), (1, 0, 0));
        // After all 8 banks, we wrap to bank 0, row 1.
        let d = m.decode(32 * 8);
        assert_eq!((d.bank, d.row, d.col), (0, 1, 0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = map();
        for w in [0u64, 1, 31, 32, 255, 256, 4095, 1 << 20] {
            assert_eq!(m.encode(m.decode(w)), w, "word {w}");
        }
    }

    #[test]
    fn strided_addresses_thrash_rows() {
        // A column walk of a 1024-wide matrix of 64-bit words: stride 1024
        // words = 32 global rows, so every access opens a new row (though
        // bank-interleaving spreads them).
        let m = map();
        let a = m.decode(0);
        let b = m.decode(1024);
        assert_ne!((a.bank, a.row), (b.bank, b.row));
    }

    #[test]
    #[should_panic(expected = "integer number of words")]
    fn word_size_must_divide_row() {
        AddrMap::new(DramConfig::default(), 60);
    }
}
