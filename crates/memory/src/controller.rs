//! In-order open-page memory controller.
//!
//! Costs a stream of word-granular accesses in DRAM cycles. The controller
//! is deliberately simple (in-order, open-page, no write buffering): the
//! paper's point is about the *order* in which traffic arrives at the memory
//! port, and this model makes ordering effects visible — a linear stream is
//! nearly all row hits, a transposed stream without reordering is nearly all
//! row conflicts.

use serde::{Deserialize, Serialize};

use crate::addr::AddrMap;
use crate::bank::{Bank, RowOutcome};
use crate::config::DramConfig;

/// How often (in accesses) [`DramController::run_trace_supervised`] polls its
/// interrupt. Coarse enough to keep the poll off the critical path, fine
/// enough that cancellation latency is bounded by ~1k bank accesses.
pub const TRACE_POLL_PERIOD: u64 = 1024;

/// A supervised trace run was interrupted before the stream was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCancelled {
    /// Accesses fully costed before the interrupt fired.
    pub accesses_done: u64,
    /// DRAM cycle the completed prefix reached.
    pub cycle: u64,
    /// Which interrupt source fired.
    pub cause: sim_core::cancel::CancelCause,
}

impl std::fmt::Display for TraceCancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace Cancelled after {} accesses at cycle {} ({})",
            self.accesses_done, self.cycle, self.cause
        )
    }
}

impl std::error::Error for TraceCancelled {}

/// Read or write. The timing model is symmetric; the distinction feeds
/// statistics and (in `psync`) data movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Read a word.
    Read,
    /// Write a word.
    Write,
}

/// Aggregate statistics over a controller's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Row hits.
    pub hits: u64,
    /// Row misses (bank idle).
    pub misses: u64,
    /// Row conflicts (wrong row open).
    pub conflicts: u64,
    /// Total beats transferred.
    pub beats: u64,
    /// Cycle the last access completed.
    pub last_done: u64,
}

impl DramStats {
    /// Row hit rate in [0, 1]; 0 when no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// The controller: banks + address map + statistics.
#[derive(Debug, Clone)]
pub struct DramController {
    cfg: DramConfig,
    map: AddrMap,
    banks: Vec<Bank>,
    stats: DramStats,
    /// Data bus becomes free at this cycle (shared across banks).
    bus_free_at: u64,
}

impl DramController {
    /// Controller for `cfg`, addressing words of `word_bits`.
    pub fn new(cfg: DramConfig, word_bits: u64) -> Self {
        cfg.validate().expect("invalid DRAM config");
        DramController {
            cfg,
            map: AddrMap::new(cfg, word_bits),
            banks: vec![Bank::default(); cfg.banks],
            stats: DramStats::default(),
            bus_free_at: 0,
        }
    }

    /// Access one word at linear address `word_addr`, arriving at cycle
    /// `now`. Returns the completion cycle.
    pub fn access(&mut self, now: u64, word_addr: u64, _kind: AccessKind) -> u64 {
        let beats = (self.map.word_bits).div_ceil(self.cfg.bus_bits);
        let d = self.map.decode(word_addr);
        // Serialize on the shared data bus.
        let start = now.max(self.bus_free_at);
        let (done, outcome) = self.banks[d.bank].access(&self.cfg, start, d.row, beats);
        self.bus_free_at = done;
        self.stats.accesses += 1;
        self.stats.beats += beats;
        match outcome {
            RowOutcome::Hit => self.stats.hits += 1,
            RowOutcome::Miss => self.stats.misses += 1,
            RowOutcome::Conflict => self.stats.conflicts += 1,
        }
        self.stats.last_done = self.stats.last_done.max(done);
        done
    }

    /// Access a contiguous run of `n` words starting at `word_addr`,
    /// arriving at `now`. Returns the completion cycle of the last word.
    pub fn access_burst(&mut self, now: u64, word_addr: u64, n: u64, kind: AccessKind) -> u64 {
        let mut t = now;
        for i in 0..n {
            t = self.access(t, word_addr + i, kind);
        }
        t
    }

    /// Cost an entire address trace starting at cycle 0; returns total cycles.
    pub fn run_trace(&mut self, addrs: impl IntoIterator<Item = u64>, kind: AccessKind) -> u64 {
        let mut t = 0;
        for a in addrs {
            t = self.access(t, a, kind);
        }
        t
    }

    /// [`Self::run_trace`] under an [`Interrupt`](sim_core::cancel::Interrupt):
    /// the interrupt is polled every [`TRACE_POLL_PERIOD`] accesses (with
    /// accesses-completed as the deterministic progress counter), so a deadline
    /// or token can stop a long trace mid-stream. On cancellation the error
    /// carries how far the trace got; the controller's statistics remain valid
    /// for the completed prefix.
    pub fn run_trace_supervised(
        &mut self,
        addrs: impl IntoIterator<Item = u64>,
        kind: AccessKind,
        interrupt: &mut sim_core::cancel::Interrupt,
    ) -> Result<u64, TraceCancelled> {
        let mut t = 0;
        for (done, a) in (0u64..).zip(addrs) {
            if done.is_multiple_of(TRACE_POLL_PERIOD) {
                if let Some(cause) = interrupt.check(done) {
                    return Err(TraceCancelled {
                        accesses_done: done,
                        cycle: t,
                        cause,
                    });
                }
            }
            t = self.access(t, a, kind);
        }
        Ok(t)
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The address map in use.
    pub fn map(&self) -> &AddrMap {
        &self.map
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_stream_is_mostly_hits() {
        let mut c = DramController::new(DramConfig::default(), 64);
        let total = c.run_trace(0..1024u64, AccessKind::Read);
        let s = c.stats();
        assert_eq!(s.accesses, 1024);
        // 1024 words / 32 per row = 32 row openings; the rest are hits.
        assert_eq!(s.hits, 1024 - 32);
        assert!(s.hit_rate() > 0.95);
        assert!(total > 0);
    }

    #[test]
    fn supervised_trace_matches_unsupervised_when_uninterrupted() {
        let mut plain = DramController::new(DramConfig::default(), 64);
        let mut sup = DramController::new(DramConfig::default(), 64);
        let t0 = plain.run_trace(0..4096u64, AccessKind::Read);
        let mut intr = sim_core::cancel::Interrupt::new();
        let t1 = sup
            .run_trace_supervised(0..4096u64, AccessKind::Read, &mut intr)
            .expect("no interrupt source armed");
        assert_eq!(t0, t1);
        assert_eq!(plain.stats(), sup.stats());
    }

    #[test]
    fn supervised_trace_cancels_with_valid_prefix_stats() {
        let mut c = DramController::new(DramConfig::default(), 64);
        let mut intr = sim_core::cancel::Interrupt::new().with_cycle_bound(TRACE_POLL_PERIOD);
        let err = c
            .run_trace_supervised(0..1_000_000u64, AccessKind::Read, &mut intr)
            .expect_err("bound well inside the trace");
        assert_eq!(err.accesses_done, TRACE_POLL_PERIOD);
        assert_eq!(c.stats().accesses, TRACE_POLL_PERIOD);
        assert_eq!(err.cycle, c.stats().last_done);
        assert!(matches!(
            err.cause,
            sim_core::cancel::CancelCause::CycleReached { .. }
        ));
        assert!(err.to_string().contains("Cancelled"));
    }

    #[test]
    fn supervised_trace_cancel_at_zero_costs_nothing() {
        let mut c = DramController::new(DramConfig::default(), 64);
        let mut intr = sim_core::cancel::Interrupt::new().with_cycle_bound(0);
        let err = c
            .run_trace_supervised(0..128u64, AccessKind::Read, &mut intr)
            .expect_err("bound 0 fires before the first access");
        assert_eq!(err.accesses_done, 0);
        assert_eq!(c.stats().accesses, 0);
    }

    #[test]
    fn transposed_stream_thrashes() {
        // Column-order walk of a 1024x1024 word matrix: stride 1024.
        let mut c = DramController::new(DramConfig::default(), 64);
        let addrs = (0..1024u64).map(|r| r * 1024);
        c.run_trace(addrs, AccessKind::Write);
        let s = c.stats();
        assert_eq!(s.hits, 0, "strided walk should never hit an open row");
    }

    #[test]
    fn ordered_beats_unordered() {
        // The quantitative heart of §V-C: the same word set costs less in
        // linear order than in transposed order.
        let linear = {
            let mut c = DramController::new(DramConfig::default(), 64);
            c.run_trace(0..4096u64, AccessKind::Write)
        };
        let strided = {
            let mut c = DramController::new(DramConfig::default(), 64);
            // 64x64 tile-transposed order covering the same 4096 words.
            let addrs = (0..64u64).flat_map(|col| (0..64u64).map(move |row| row * 64 + col));
            c.run_trace(addrs, AccessKind::Write)
        };
        assert!(
            strided > linear * 2,
            "strided ({strided}) should cost >2x linear ({linear})"
        );
    }

    #[test]
    fn ideal_config_matches_paper_arithmetic() {
        // Table III: with S_r = 2048 and S_b = 64, a row of payload is 32
        // beats; an ideal controller streams 2^20 64-bit words in exactly
        // 2^20 beats.
        let mut c = DramController::new(DramConfig::ideal_paper(), 64);
        let total = c.run_trace(0..(1u64 << 20), AccessKind::Write);
        assert_eq!(total, 1 << 20);
    }

    #[test]
    fn stats_partition_accesses() {
        let mut c = DramController::new(DramConfig::default(), 64);
        c.run_trace([0, 1, 32, 0, 33], AccessKind::Read);
        let s = c.stats();
        assert_eq!(s.accesses, s.hits + s.misses + s.conflicts);
    }

    #[test]
    fn burst_equals_individual_accesses() {
        let mut a = DramController::new(DramConfig::default(), 64);
        let ta = a.access_burst(0, 100, 64, AccessKind::Read);
        let mut b = DramController::new(DramConfig::default(), 64);
        let mut tb = 0;
        for w in 100..164 {
            tb = b.access(tb, w, AccessKind::Read);
        }
        assert_eq!(ta, tb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn wide_words_take_multiple_beats() {
        // 128-bit words over a 64-bit bus: 2 beats each.
        let mut c = DramController::new(DramConfig::ideal_paper(), 128);
        let total = c.run_trace(0..16u64, AccessKind::Read);
        assert_eq!(total, 32);
    }
}
