//! An out-of-order (FR-FCFS) memory controller.
//!
//! The §V-C mesh pays dearly because transpose elements arrive at the port
//! scrambled and the in-order controller eats a row conflict per element.
//! A First-Ready, First-Come-First-Served scheduler can peek a window of
//! queued requests and issue row *hits* first — the strongest conventional
//! defence against scrambled streams. This module implements it so the
//! ablation can ask: does a smart controller close the gap to the SCA's
//! perfectly ordered stream? (It narrows it; it cannot close it, because
//! hits only exist when the window happens to hold same-row requests.)

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use sim_core::telemetry::SeriesHistogram;

use crate::addr::AddrMap;
use crate::bank::{Bank, RowOutcome};
use crate::config::DramConfig;
use crate::controller::DramStats;

/// FR-FCFS controller configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrFcfsConfig {
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// Scheduling window: how many queued requests the scheduler may
    /// reorder over. 1 = in-order.
    pub window: usize,
}

impl Default for FrFcfsConfig {
    fn default() -> Self {
        FrFcfsConfig {
            dram: DramConfig::default(),
            window: 16,
        }
    }
}

/// The controller.
#[derive(Debug, Clone)]
pub struct FrFcfsController {
    cfg: FrFcfsConfig,
    map: AddrMap,
    banks: Vec<Bank>,
    stats: DramStats,
    bus_free_at: u64,
    /// Optional telemetry: how deep into the window each issued request
    /// sat (0 = issued in arrival order). `None` costs nothing per pick.
    reorder_depth: Option<SeriesHistogram>,
}

impl FrFcfsController {
    /// New controller addressing words of `word_bits`.
    pub fn new(cfg: FrFcfsConfig, word_bits: u64) -> Self {
        cfg.dram.validate().expect("invalid DRAM config");
        assert!(cfg.window >= 1, "window must be at least 1");
        FrFcfsController {
            cfg,
            map: AddrMap::new(cfg.dram, word_bits),
            banks: vec![Bank::default(); cfg.dram.banks],
            stats: DramStats::default(),
            bus_free_at: 0,
            reorder_depth: None,
        }
    }

    /// Start recording the reorder depth of every issued request (the
    /// window index the scheduler picked) into a histogram.
    pub fn enable_reorder_telemetry(&mut self) {
        self.reorder_depth = Some(SeriesHistogram::default());
    }

    /// The reorder-depth histogram, if telemetry is enabled.
    pub fn reorder_depth_hist(&self) -> Option<&SeriesHistogram> {
        self.reorder_depth.as_ref()
    }

    /// Process a stream of `(arrival_cycle, word_addr)` requests (sorted by
    /// arrival). Returns the completion cycle of the last request.
    pub fn run(&mut self, requests: impl IntoIterator<Item = (u64, u64)>) -> u64 {
        let mut incoming: VecDeque<(u64, u64)> = requests.into_iter().collect();
        debug_assert!(incoming
            .iter()
            .zip(incoming.iter().skip(1))
            .all(|(a, b)| a.0 <= b.0));
        let mut window: VecDeque<(u64, u64)> = VecDeque::new();
        let mut now = 0u64;
        let mut last_done = 0u64;

        while !incoming.is_empty() || !window.is_empty() {
            // Fill the window with requests that have arrived by `now`;
            // if idle, jump to the next arrival.
            while window.len() < self.cfg.window {
                match incoming.front() {
                    Some(&(t, _)) if t <= now => {
                        window.push_back(incoming.pop_front().expect("front"));
                    }
                    Some(&(t, _)) if window.is_empty() => {
                        now = t;
                        window.push_back(incoming.pop_front().expect("front"));
                    }
                    _ => break,
                }
            }
            // First-ready: the oldest request whose row is open; else the
            // oldest request outright.
            let pick = window
                .iter()
                .position(|&(_, a)| {
                    let d = self.map.decode(a);
                    self.banks[d.bank].open_row() == Some(d.row)
                })
                .unwrap_or(0);
            if let Some(h) = self.reorder_depth.as_mut() {
                h.record(pick as u64);
            }
            let (arrive, addr) = window.remove(pick).expect("window nonempty");
            let beats = self.map.word_bits.div_ceil(self.cfg.dram.bus_bits);
            let d = self.map.decode(addr);
            let start = now.max(arrive).max(self.bus_free_at);
            let (done, outcome) = self.banks[d.bank].access(&self.cfg.dram, start, d.row, beats);
            self.bus_free_at = done;
            now = now.max(start);
            last_done = last_done.max(done);
            self.stats.accesses += 1;
            self.stats.beats += beats;
            match outcome {
                RowOutcome::Hit => self.stats.hits += 1,
                RowOutcome::Miss => self.stats.misses += 1,
                RowOutcome::Conflict => self.stats.conflicts += 1,
            }
        }
        self.stats.last_done = last_done;
        last_done
    }

    /// Statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::permutation;

    fn scrambled(n: usize) -> Vec<(u64, u64)> {
        permutation(n, 7)
            .into_iter()
            .enumerate()
            .map(|(i, a)| (i as u64, a as u64))
            .collect()
    }

    #[test]
    fn window_1_matches_in_order_controller() {
        let reqs = scrambled(2048);
        let mut oo = FrFcfsController::new(
            FrFcfsConfig {
                window: 1,
                ..Default::default()
            },
            64,
        );
        let oo_done = oo.run(reqs.clone());
        let mut io = crate::controller::DramController::new(DramConfig::default(), 64);
        let mut t = 0;
        for (arrive, a) in &reqs {
            t = io.access(t.max(*arrive), *a, crate::controller::AccessKind::Write);
        }
        assert_eq!(oo_done, t);
        assert_eq!(oo.stats().hits, io.stats().hits);
    }

    #[test]
    fn wider_windows_recover_hits_on_scrambled_streams() {
        let reqs = scrambled(4096);
        let mut results = Vec::new();
        for window in [1usize, 4, 16, 64] {
            let mut c = FrFcfsController::new(
                FrFcfsConfig {
                    window,
                    ..Default::default()
                },
                64,
            );
            let done = c.run(reqs.clone());
            results.push((window, done, c.stats().hit_rate()));
        }
        // Completion time falls and hit rate rises monotonically-ish.
        assert!(results[3].1 < results[0].1, "{results:?}");
        assert!(results[3].2 > results[0].2 + 0.1, "{results:?}");
    }

    #[test]
    fn linear_stream_needs_no_reordering() {
        let reqs: Vec<(u64, u64)> = (0..2048u64).map(|i| (i, i)).collect();
        let mut narrow = FrFcfsController::new(
            FrFcfsConfig {
                window: 1,
                ..Default::default()
            },
            64,
        );
        let mut wide = FrFcfsController::new(
            FrFcfsConfig {
                window: 64,
                ..Default::default()
            },
            64,
        );
        let a = narrow.run(reqs.clone());
        let b = wide.run(reqs);
        assert_eq!(a, b, "reordering can't improve an already-linear stream");
    }

    #[test]
    fn cannot_beat_the_ordered_stream() {
        // Even a wide window on scrambled input stays behind the same
        // requests in linear order — the SCA's whole point.
        let n = 4096;
        let mut wide = FrFcfsController::new(
            FrFcfsConfig {
                window: 64,
                ..Default::default()
            },
            64,
        );
        let scrambled_done = wide.run(scrambled(n));
        let mut lin = FrFcfsController::new(
            FrFcfsConfig {
                window: 1,
                ..Default::default()
            },
            64,
        );
        let linear_done = lin.run((0..n as u64).map(|i| (i, i)));
        assert!(
            scrambled_done > linear_done + (linear_done / 5),
            "scrambled {scrambled_done} vs linear {linear_done}"
        );
    }
}
