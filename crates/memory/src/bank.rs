//! Per-bank open-row state machine.

use serde::{Deserialize, Serialize};

use crate::config::DramConfig;

/// One DRAM bank with an open-page policy.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Cycle at which the bank becomes ready for a new command.
    ready_at: u64,
}

/// Outcome classification of one access, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowOutcome {
    /// Row already open: only CAS + burst.
    Hit,
    /// Bank was idle (no open row): activate + CAS + burst.
    Miss,
    /// A different row was open: precharge + activate + CAS + burst.
    Conflict,
}

impl Bank {
    /// Access `row` starting no earlier than `now`; returns
    /// `(completion_cycle, outcome)` for a burst of `beats` bus words.
    pub fn access(
        &mut self,
        cfg: &DramConfig,
        now: u64,
        row: u64,
        beats: u64,
    ) -> (u64, RowOutcome) {
        let start = now.max(self.ready_at);
        let (latency, outcome) = match self.open_row {
            Some(r) if r == row => (cfg.t_cas, RowOutcome::Hit),
            Some(_) => (
                cfg.t_precharge + cfg.t_activate + cfg.t_cas,
                RowOutcome::Conflict,
            ),
            None => (cfg.t_activate + cfg.t_cas, RowOutcome::Miss),
        };
        let done = start + latency + beats * cfg.t_beat;
        self.open_row = Some(row);
        self.ready_at = done;
        (done, outcome)
    }

    /// Explicitly close the open row (e.g. refresh), paying precharge.
    pub fn precharge(&mut self, cfg: &DramConfig, now: u64) -> u64 {
        let start = now.max(self.ready_at);
        self.open_row = None;
        self.ready_at = start + cfg.t_precharge;
        self.ready_at
    }

    /// Currently open row.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Earliest cycle the bank can accept a new command.
    pub fn ready_at(&self) -> u64 {
        self.ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_miss() {
        let cfg = DramConfig::default();
        let mut b = Bank::default();
        let (done, out) = b.access(&cfg, 0, 5, 4);
        assert_eq!(out, RowOutcome::Miss);
        // activate(10) + cas(10) + 4 beats = 24
        assert_eq!(done, 24);
        assert_eq!(b.open_row(), Some(5));
    }

    #[test]
    fn same_row_hits() {
        let cfg = DramConfig::default();
        let mut b = Bank::default();
        let (t1, _) = b.access(&cfg, 0, 5, 4);
        let (t2, out) = b.access(&cfg, t1, 5, 4);
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(t2 - t1, cfg.t_cas + 4); // no activate
    }

    #[test]
    fn different_row_conflicts() {
        let cfg = DramConfig::default();
        let mut b = Bank::default();
        let (t1, _) = b.access(&cfg, 0, 5, 4);
        let (t2, out) = b.access(&cfg, t1, 6, 4);
        assert_eq!(out, RowOutcome::Conflict);
        assert_eq!(t2 - t1, cfg.row_switch_cost() + 4);
    }

    #[test]
    fn busy_bank_delays_start() {
        let cfg = DramConfig::default();
        let mut b = Bank::default();
        let (t1, _) = b.access(&cfg, 0, 5, 32);
        // Request issued "in the past" relative to bank readiness.
        let (t2, out) = b.access(&cfg, 0, 5, 1);
        assert_eq!(out, RowOutcome::Hit);
        assert_eq!(t2, t1 + cfg.t_cas + 1);
    }

    #[test]
    fn precharge_closes_row() {
        let cfg = DramConfig::default();
        let mut b = Bank::default();
        b.access(&cfg, 0, 5, 1);
        b.precharge(&cfg, 100);
        assert_eq!(b.open_row(), None);
        let (_, out) = b.access(&cfg, 200, 5, 1);
        assert_eq!(out, RowOutcome::Miss);
    }

    #[test]
    fn ideal_config_streams_at_bus_rate() {
        let cfg = DramConfig::ideal_paper();
        let mut b = Bank::default();
        let mut t = 0;
        for row in 0..100 {
            let (done, _) = b.access(&cfg, t, row, 32);
            assert_eq!(done - t, 32, "row {row} should cost exactly 32 beats");
            t = done;
        }
    }
}
