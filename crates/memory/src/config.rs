//! DRAM geometry and timing parameters.

use serde::{Deserialize, Serialize};

/// Configuration of one DRAM device/channel.
///
/// Defaults reproduce the paper's §V-C-1 assumptions: 2048-bit rows
/// ("32 64-bit complex samples can be bursted at a time before a costly
/// row-precharge must occur") behind a 64-bit bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independent banks.
    pub banks: usize,
    /// Row size in bits (`S_r`).
    pub row_bits: u64,
    /// Data bus width in bits (`S_b` of Eq. 24).
    pub bus_bits: u64,
    /// Cycles to activate (open) a row: tRCD.
    pub t_activate: u64,
    /// Cycles to precharge (close) a row: tRP.
    pub t_precharge: u64,
    /// Column access latency once the row is open: tCAS.
    pub t_cas: u64,
    /// Cycles per bus beat while bursting (1 = one bus word per cycle).
    pub t_beat: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bits: 2048,
            bus_bits: 64,
            t_activate: 10,
            t_precharge: 10,
            t_cas: 10,
            t_beat: 1,
        }
    }
}

impl DramConfig {
    /// The idealized configuration used by the paper's Table III arithmetic:
    /// row switches are hidden (perfectly pipelined across banks), so a
    /// transaction costs exactly its bus beats.
    pub fn ideal_paper() -> Self {
        DramConfig {
            t_activate: 0,
            t_precharge: 0,
            t_cas: 0,
            ..Default::default()
        }
    }

    /// Set the bank count.
    #[must_use]
    pub fn with_banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Set the row size in bits (`S_r`).
    #[must_use]
    pub fn with_row_bits(mut self, row_bits: u64) -> Self {
        self.row_bits = row_bits;
        self
    }

    /// Set the data bus width in bits (`S_b`).
    #[must_use]
    pub fn with_bus_bits(mut self, bus_bits: u64) -> Self {
        self.bus_bits = bus_bits;
        self
    }

    /// Set the row timing triple (tRCD, tRP, tCAS).
    #[must_use]
    pub fn with_row_timing(mut self, t_activate: u64, t_precharge: u64, t_cas: u64) -> Self {
        self.t_activate = t_activate;
        self.t_precharge = t_precharge;
        self.t_cas = t_cas;
        self
    }

    /// Set the cycles per bus beat.
    #[must_use]
    pub fn with_t_beat(mut self, t_beat: u64) -> Self {
        self.t_beat = t_beat;
        self
    }

    /// Bus words (beats) per row: `S_r / S_b`.
    pub fn beats_per_row(&self) -> u64 {
        self.row_bits / self.bus_bits
    }

    /// Words of `word_bits` each that fit in one row.
    pub fn words_per_row(&self, word_bits: u64) -> u64 {
        assert!(word_bits > 0);
        self.row_bits / word_bits
    }

    /// Cost in cycles of a row-miss overhead (precharge old + activate new
    /// + CAS).
    pub fn row_switch_cost(&self) -> u64 {
        self.t_precharge + self.t_activate + self.t_cas
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 {
            return Err("banks must be > 0".into());
        }
        if self.bus_bits == 0 || self.row_bits == 0 {
            return Err("bus and row sizes must be > 0".into());
        }
        if !self.row_bits.is_multiple_of(self.bus_bits) {
            return Err(format!(
                "row_bits ({}) must be a multiple of bus_bits ({})",
                self.row_bits, self.bus_bits
            ));
        }
        if self.t_beat == 0 {
            return Err("t_beat must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = DramConfig::default();
        assert_eq!(c.beats_per_row(), 32); // 2048 / 64
        assert_eq!(c.words_per_row(64), 32); // 32 complex samples of 64 b
        assert!(c.validate().is_ok());
    }

    #[test]
    fn ideal_has_free_row_switches() {
        let c = DramConfig::ideal_paper();
        assert_eq!(c.row_switch_cost(), 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_misconfig() {
        // row_bits not a multiple of 64:
        let c = DramConfig {
            row_bits: 100,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DramConfig {
            banks: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = DramConfig {
            t_beat: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
