//! # memory
//!
//! The off-chip DRAM substrate both architectures read from and write back
//! to. The paper's transpose analysis (§V-C-1) hinges on one DRAM property:
//! a 2048-bit row can be bursted contiguously, but touching a different row
//! costs a precharge + activate. The head node of P-sync and the memory
//! interfaces of the mesh both sit in front of this model.
//!
//! * [`config`] — geometry (banks, row bits, bus width) and timing
//!   (activate / precharge / CAS / per-beat burst) parameters.
//! * [`addr`] — linear word address ↔ (bank, row, column) mapping.
//! * [`bank`] — per-bank open-row state machine.
//! * [`controller`] — an in-order open-page controller that costs an access
//!   stream in DRAM cycles; row hits stream at bus rate, row conflicts pay
//!   the precharge/activate penalty. Reports hit/conflict statistics used by
//!   the transpose experiments.

pub mod addr;
pub mod bank;
pub mod config;
pub mod controller;
pub mod frfcfs;

pub use addr::{AddrMap, Decoded};
pub use bank::Bank;
pub use config::DramConfig;
pub use controller::{AccessKind, DramController, DramStats, TraceCancelled};
pub use frfcfs::{FrFcfsConfig, FrFcfsController};

/// One-stop import for DRAM experiments:
/// `use memory::prelude::*;`.
pub mod prelude {
    pub use crate::config::DramConfig;
    pub use crate::controller::{AccessKind, DramController, DramStats};
    pub use crate::frfcfs::{FrFcfsConfig, FrFcfsController};
}
