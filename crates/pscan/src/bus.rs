//! Discrete-event simulation of the photonic bus executing SCA / SCA⁻¹.
//!
//! The simulator is built on the physical picture of paper Fig. 4. The clock
//! wavelength `λ_c` launches numbered wavefronts down the waveguide; the
//! data wavelength `λ_d` co-propagates. A node that modulates `λ_d` aligned
//! to its *locally detected* clock edge `k` imprints its bits onto global
//! wavefront `k`, because clock and data travel at the same speed. Hence:
//!
//! * Slot ownership is per *wavefront index*, not per absolute time — two
//!   nodes may modulate simultaneously in absolute time (the paper's `t_4`)
//!   as long as they own different wavefronts.
//! * A collision is two nodes imprinting the same wavefront.
//! * The terminus photodiode sees wavefront `k` at
//!   `origin + k·period + flight(bus end) + response`, so a CP set that
//!   covers a contiguous slot range synthesizes a gap-free burst "as if from
//!   a single source".
//!
//! Events (modulations, arrivals, deliveries) flow through a
//! [`sim_core::EventQueue`], so causality and determinism are enforced by
//! the kernel rather than by closed-form arithmetic; the closed-form
//! expectations then *verify* the DES in tests (and vice versa).

use photonics::clock::PhotonicClock;
use photonics::waveguide::{flight_time_mm, ChipLayout};
use photonics::wdm::WavelengthPlan;
use sim_core::event::EventQueue;
use sim_core::invariant;
use sim_core::time::Time;

use crate::cp::{CommProgram, CpAction};
use crate::NodeId;

/// A bus failure detected during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// Two nodes imprinted the same wavefront.
    Collision {
        /// The contested global slot.
        slot: u64,
        /// Node that owned the wavefront first.
        first: NodeId,
        /// Node whose modulation collided.
        second: NodeId,
    },
    /// A node's CP drives more slots than it has data words.
    DataUnderrun {
        /// The starved node.
        node: NodeId,
        /// Words available.
        have: usize,
        /// Slots its CP drives.
        need: u64,
    },
    /// A CP references a node outside the bus.
    BadNode {
        /// The offending id.
        node: NodeId,
    },
    /// A listener scheduled a slot it physically cannot hear: the driver is
    /// not strictly upstream (or the slot is dark). `driver == usize::MAX`
    /// encodes an unowned slot.
    Unreachable {
        /// The contested slot.
        slot: u64,
        /// Who drives it (usize::MAX = nobody).
        driver: NodeId,
        /// Who tried to listen.
        listener: NodeId,
    },
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::Collision {
                slot,
                first,
                second,
            } => write!(
                f,
                "wavefront collision on slot {slot}: node {second} over node {first}"
            ),
            BusError::DataUnderrun { node, have, need } => {
                write!(f, "node {node} drives {need} slots but holds {have} words")
            }
            BusError::BadNode { node } => write!(f, "CP references nonexistent node {node}"),
            BusError::Unreachable {
                slot,
                driver,
                listener,
            } => {
                if *driver == usize::MAX {
                    write!(f, "node {listener} listens to dark slot {slot}")
                } else {
                    write!(
                        f,
                        "node {listener} cannot hear slot {slot}: driver {driver} is not upstream"
                    )
                }
            }
        }
    }
}

impl std::error::Error for BusError {}

/// Result of a gather (SCA).
#[derive(Debug, Clone)]
pub struct GatherOutcome {
    /// Word observed on each wavefront at the terminus (`None` = unmodulated
    /// slot, i.e. a gap in the burst).
    pub received: Vec<Option<u64>>,
    /// Terminus arrival time of the first owned wavefront.
    pub first_arrival: Time,
    /// Terminus arrival time of the last owned wavefront — gather latency.
    pub last_arrival: Time,
    /// Fraction of wavefronts in `[first, last]` that carried data
    /// (1.0 = the gap-free burst of §III).
    pub utilization: f64,
    /// Total data bits modulated onto the bus.
    pub bits: u64,
    /// Per-node count of modulated slots (for energy accounting).
    pub slots_by_node: Vec<u64>,
}

/// Result of a scatter (SCA⁻¹).
#[derive(Debug, Clone)]
pub struct ScatterOutcome {
    /// Words captured by each node, in its CP slot order.
    pub delivered: Vec<Vec<u64>>,
    /// Time each node detected its last slot (`None` if it listened to
    /// nothing).
    pub completion: Vec<Option<Time>>,
    /// Time the final slot of the whole burst passed the last tap.
    pub end: Time,
    /// Total data bits carried.
    pub bits: u64,
}

/// Result of a mixed Drive/Listen transaction (see [`BusSim::transact`]).
#[derive(Debug, Clone)]
pub struct TransactOutcome {
    /// The underlying gather view (terminus stream, utilization, energy).
    pub gather: GatherOutcome,
    /// Words captured by each listening node, in its CP slot order.
    pub delivered: Vec<Vec<u64>>,
    /// Time each listening node captured its last slot.
    pub completion: Vec<Option<Time>>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// `node` imprints wavefront `slot` with `word`.
    Modulate { node: NodeId, slot: u64, word: u64 },
    /// Wavefront `slot` reaches the terminus photodiode.
    Arrive { slot: u64 },
    /// Wavefront `slot` (scatter) reaches `node`'s detector.
    Deliver { node: NodeId, slot: u64 },
}

/// The bus simulator: layout + clock + WDM plan.
#[derive(Debug, Clone)]
pub struct BusSim {
    layout: ChipLayout,
    clock: PhotonicClock,
    plan: WavelengthPlan,
    /// Per-node timing error in picoseconds (signed): deviation of a node's
    /// actual modulation instant from its ideal skew-aligned time. Zero in
    /// a correctly calibrated PSCAN; §III-A's "exact temporal alignment"
    /// requirement is what breaks when these grow past ±half a slot.
    timing_error_ps: Vec<i64>,
}

impl BusSim {
    /// Build a bus over `layout` with one slot per clock period of `plan`.
    pub fn new(layout: ChipLayout, plan: WavelengthPlan) -> Self {
        let clock = PhotonicClock::new(&layout, plan.slot(), Time::ZERO);
        let nodes = layout.nodes;
        BusSim {
            layout,
            clock,
            plan,
            timing_error_ps: vec![0; nodes],
        }
    }

    /// Inject a per-node timing error (calibration drift, in ps). A node
    /// whose error exceeds ±half a slot imprints the *wrong wavefront*:
    /// its data lands shifted, colliding with neighbours or leaving gaps —
    /// the physical failure mode open-loop synchronization must avoid.
    pub fn set_timing_error(&mut self, node: NodeId, error_ps: i64) {
        self.timing_error_ps[node] = error_ps;
    }

    /// The wavefront node `node` actually imprints when its CP says `slot`,
    /// given its timing error (nearest-wavefront capture).
    fn effective_slot(&self, node: NodeId, slot: u64) -> i64 {
        let period = self.clock.period.as_ps() as i64;
        let err = self.timing_error_ps[node];
        // Round to the nearest wavefront.
        let shift = (err + if err >= 0 { period / 2 } else { -(period / 2) }) / period;
        slot as i64 + shift
    }

    /// The underlying photonic clock (per-tap skews etc.).
    pub fn clock(&self) -> &PhotonicClock {
        &self.clock
    }

    /// The chip layout.
    pub fn layout(&self) -> &ChipLayout {
        &self.layout
    }

    /// The WDM plan.
    pub fn plan(&self) -> &WavelengthPlan {
        &self.plan
    }

    /// Number of node taps.
    pub fn nodes(&self) -> usize {
        self.layout.nodes
    }

    /// Terminus arrival time of wavefront `slot`: the end of the bus, past
    /// every tap.
    pub fn terminus_time(&self, slot: u64) -> Time {
        self.clock.origin
            + self.clock.period * slot
            + flight_time_mm(self.layout.bus_length_mm())
            + self.clock.response_delay
    }

    /// Execute an SCA gather.
    ///
    /// `programs[n]` is node `n`'s CP (only `Drive` entries participate);
    /// `data[n]` holds the words node `n` feeds its modulator, consumed in
    /// slot order.
    pub fn gather(
        &self,
        programs: &[CommProgram],
        data: &[Vec<u64>],
    ) -> Result<GatherOutcome, BusError> {
        assert_eq!(programs.len(), data.len(), "one data vector per program");
        if programs.len() > self.nodes() {
            return Err(BusError::BadNode { node: self.nodes() });
        }

        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut max_slot = 0u64;
        for (node, cp) in programs.iter().enumerate() {
            let need = cp.slots_driven();
            if (data[node].len() as u64) < need {
                return Err(BusError::DataUnderrun {
                    node,
                    have: data[node].len(),
                    need,
                });
            }
            let mut next_word = 0usize;
            for (slot, action) in cp.iter_slots() {
                if action != CpAction::Drive {
                    continue;
                }
                let word = data[node][next_word];
                next_word += 1;
                // A timing error shifts both the modulation instant and —
                // if it exceeds ±half a slot — the wavefront imprinted.
                let eff = self.effective_slot(node, slot);
                if eff < 0 {
                    continue; // light fell before wavefront 0: lost
                }
                let eff = eff as u64;
                let ideal = self.clock.drive_time(node, slot);
                let err = self.timing_error_ps[node];
                let actual = if err >= 0 {
                    ideal + sim_core::time::Duration::from_ps(err as u64)
                } else {
                    let e = (-err) as u64;
                    Time::from_ps(ideal.as_ps().saturating_sub(e))
                };
                q.schedule(
                    actual,
                    Ev::Modulate {
                        node,
                        slot: eff,
                        word,
                    },
                );
                max_slot = max_slot.max(eff);
            }
        }

        let n_slots = max_slot + 1;
        let mut owner: Vec<Option<NodeId>> = vec![None; n_slots as usize];
        let mut received: Vec<Option<u64>> = vec![None; n_slots as usize];
        let mut slots_by_node = vec![0u64; programs.len()];
        let mut scheduled_arrivals = 0u64;
        let mut first_arrival = Time::MAX;
        let mut last_arrival = Time::ZERO;
        let mut any = false;

        // Pre-schedule terminus arrivals for every owned slot as modulations
        // resolve. Arrivals strictly follow their modulation in time.
        let mut pending_arrivals: Vec<(Time, u64)> = Vec::new();
        while let Some(ev) = q.pop() {
            match ev.payload {
                Ev::Modulate { node, slot, word } => {
                    let cell = &mut owner[slot as usize];
                    if let Some(first) = *cell {
                        return Err(BusError::Collision {
                            slot,
                            first,
                            second: node,
                        });
                    }
                    *cell = Some(node);
                    received[slot as usize] = Some(word);
                    slots_by_node[node] += 1;
                    pending_arrivals.push((self.terminus_time(slot), slot));
                    scheduled_arrivals += 1;
                }
                Ev::Arrive { .. } | Ev::Deliver { .. } => unreachable!("gather emits none"),
            }
        }
        // Replay arrivals through the queue to exercise the DES end-to-end
        // (and to produce arrival times in causal order).
        let mut q2: EventQueue<Ev> = EventQueue::new();
        for (t, slot) in pending_arrivals {
            q2.schedule(t, Ev::Arrive { slot });
        }
        let mut last_slot_seen: Option<u64> = None;
        while let Some(ev) = q2.pop() {
            if let Ev::Arrive { slot } = ev.payload {
                // Wavefronts reach the terminus in slot order — the physical
                // guarantee that the coalesced burst is well-ordered.
                if let Some(prev) = last_slot_seen {
                    invariant!(slot > prev, "terminus saw slots out of order");
                }
                last_slot_seen = Some(slot);
                if !any {
                    first_arrival = ev.at;
                    any = true;
                }
                last_arrival = ev.at;
            }
        }
        // Bus-slot exclusivity accounting (DESIGN.md §12): every owned slot
        // produced exactly one arrival, per-node tallies partition the owned
        // set, and word occupancy mirrors ownership slot-for-slot.
        if sim_core::invariants::ENABLED {
            invariant!(
                scheduled_arrivals == owner.iter().flatten().count() as u64,
                "bus-slot exclusivity: {scheduled_arrivals} arrivals vs owned slots"
            );
            invariant!(
                slots_by_node.iter().sum::<u64>() == scheduled_arrivals,
                "bus-slot exclusivity: per-node slot tallies do not partition the owned set"
            );
            invariant!(
                owner
                    .iter()
                    .zip(received.iter())
                    .all(|(o, w)| o.is_some() == w.is_some()),
                "bus-slot exclusivity: slot owned without a word (or vice versa)"
            );
        }

        let owned = received.iter().flatten().count() as u64;
        let (lo, hi) = span(&received);
        let span_len = if owned == 0 { 0 } else { hi - lo + 1 };
        let utilization = if span_len == 0 {
            0.0
        } else {
            owned as f64 / span_len as f64
        };

        Ok(GatherOutcome {
            bits: owned * self.plan.bits_per_slot(),
            received,
            first_arrival: if any { first_arrival } else { Time::ZERO },
            last_arrival,
            utilization,
            slots_by_node,
        })
    }

    /// Execute a general transaction: programs may both Drive and Listen.
    ///
    /// This is the §IV "multi-purpose physical channel": SCA traffic and
    /// ordinary node-to-node messages share the waveguide under one global
    /// schedule. Physics constrains who can hear whom — the bus is
    /// *directional*: a listener only captures a wavefront modulated by a
    /// strictly **upstream** node (the wavefront passes downstream taps
    /// after the driver, and upstream taps before it). Listening to a slot
    /// whose driver is at or downstream of the listener yields
    /// [`BusError::Unreachable`].
    pub fn transact(
        &self,
        programs: &[CommProgram],
        data: &[Vec<u64>],
    ) -> Result<TransactOutcome, BusError> {
        // First resolve ownership exactly as a gather does.
        let gather = self.gather(programs, data)?;

        // Rebuild the per-slot owner map from the programs (same pass the
        // gather made, but we need owner identity per slot).
        let n_slots = gather.received.len() as u64;
        let mut owner: Vec<Option<NodeId>> = vec![None; n_slots as usize];
        for (node, cp) in programs.iter().enumerate() {
            for (slot, action) in cp.iter_slots() {
                if action == CpAction::Drive {
                    owner[slot as usize] = Some(node);
                }
            }
        }

        let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); programs.len()];
        let mut completion: Vec<Option<Time>> = vec![None; programs.len()];
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (node, cp) in programs.iter().enumerate() {
            for (slot, action) in cp.iter_slots() {
                if action != CpAction::Listen {
                    continue;
                }
                match owner.get(slot as usize).copied().flatten() {
                    Some(driver) if driver < node => {
                        let t = self.clock.edge_at_tap(node, slot) + self.clock.response_delay;
                        q.schedule(t, Ev::Deliver { node, slot });
                    }
                    Some(driver) => {
                        return Err(BusError::Unreachable {
                            slot,
                            driver,
                            listener: node,
                        });
                    }
                    None => {
                        return Err(BusError::Unreachable {
                            slot,
                            driver: usize::MAX,
                            listener: node,
                        });
                    }
                }
            }
        }
        while let Some(ev) = q.pop() {
            if let Ev::Deliver { node, slot } = ev.payload {
                delivered[node].push(gather.received[slot as usize].expect("owned slot"));
                completion[node] = Some(ev.at);
            }
        }
        Ok(TransactOutcome {
            gather,
            delivered,
            completion,
        })
    }

    /// Execute an SCA⁻¹ scatter: the head node (at the bus origin, upstream
    /// of every tap) drives `burst[k]` on wavefront `k`; each node captures
    /// the slots its CP listens on.
    pub fn scatter(
        &self,
        programs: &[CommProgram],
        burst: &[u64],
    ) -> Result<ScatterOutcome, BusError> {
        if programs.len() > self.nodes() {
            return Err(BusError::BadNode { node: self.nodes() });
        }
        let n_slots = burst.len() as u64;
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (node, cp) in programs.iter().enumerate() {
            for (slot, action) in cp.iter_slots() {
                if action != CpAction::Listen {
                    continue;
                }
                if slot >= n_slots {
                    return Err(BusError::DataUnderrun {
                        node,
                        have: burst.len(),
                        need: slot + 1,
                    });
                }
                // Wavefront k passes tap `node` when the tap sees edge k.
                let t = self.clock.edge_at_tap(node, slot) + self.clock.response_delay;
                q.schedule(t, Ev::Deliver { node, slot });
            }
        }

        let mut delivered: Vec<Vec<u64>> = vec![Vec::new(); programs.len()];
        let mut completion: Vec<Option<Time>> = vec![None; programs.len()];
        while let Some(ev) = q.pop() {
            if let Ev::Deliver { node, slot } = ev.payload {
                delivered[node].push(burst[slot as usize]);
                completion[node] = Some(ev.at);
            }
        }

        let end = if n_slots == 0 {
            Time::ZERO
        } else {
            self.terminus_time(n_slots - 1)
        };
        Ok(ScatterOutcome {
            delivered,
            completion,
            end,
            bits: n_slots * self.plan.bits_per_slot(),
        })
    }
}

/// `(first, last)` indices of `Some` entries; `(0, 0)` when none.
fn span(received: &[Option<u64>]) -> (u64, u64) {
    let mut lo = None;
    let mut hi = 0u64;
    for (i, w) in received.iter().enumerate() {
        if w.is_some() {
            if lo.is_none() {
                lo = Some(i as u64);
            }
            hi = i as u64;
        }
    }
    (lo.unwrap_or(0), hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CpCompiler, GatherSpec, ScatterSpec};
    use crate::cp::CpEntry;

    fn bus(nodes: usize) -> BusSim {
        BusSim::new(
            ChipLayout::square(20.0, nodes),
            WavelengthPlan::paper_320g(),
        )
    }

    #[test]
    fn fig4_interleave_coalesces_gap_free() {
        // P0 drives slots {0,1},{4,5} with bits a,b,e,f; P1 drives {2,3}
        // with c,d. The terminus must see a,b,c,d,e,f as one burst.
        let b = bus(3);
        let spec = GatherSpec {
            slot_source: vec![0, 0, 1, 1, 0, 0],
        };
        let cps = CpCompiler.compile_gather(&spec, 3);
        let data = vec![vec![0xA, 0xB, 0xE, 0xF], vec![0xC, 0xD], vec![]];
        let out = b.gather(&cps, &data).unwrap();
        let words: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
        assert_eq!(words, vec![0xA, 0xB, 0xC, 0xD, 0xE, 0xF]);
        assert_eq!(out.utilization, 1.0);
        assert_eq!(out.slots_by_node, vec![4, 2, 0]);
    }

    #[test]
    fn burst_arrives_at_full_line_rate() {
        // 64 nodes x 16 slots each, interleaved: the coalesced burst spans
        // exactly n_slots periods at the terminus.
        let b = bus(64);
        let spec = GatherSpec::interleaved(64, 16, 1);
        let cps = CpCompiler.compile_gather(&spec, 64);
        let data: Vec<Vec<u64>> = (0..64).map(|n| vec![n as u64; 16]).collect();
        let out = b.gather(&cps, &data).unwrap();
        let slots = spec.total_slots();
        let expect = b.clock().period * (slots - 1);
        assert_eq!(out.last_arrival.since(out.first_arrival), expect);
        assert_eq!(out.utilization, 1.0);
    }

    #[test]
    fn collision_is_detected() {
        let b = bus(2);
        let cp0 = CommProgram::new(vec![CpEntry {
            start: 0,
            len: 2,
            action: CpAction::Drive,
        }])
        .unwrap();
        let cp1 = CommProgram::new(vec![CpEntry {
            start: 1,
            len: 1,
            action: CpAction::Drive,
        }])
        .unwrap();
        let err = b.gather(&[cp0, cp1], &[vec![1, 2], vec![3]]).unwrap_err();
        match err {
            BusError::Collision { slot: 1, .. } => {}
            other => panic!("expected collision on slot 1, got {other:?}"),
        }
    }

    #[test]
    fn underrun_is_detected() {
        let b = bus(1);
        let cp = CommProgram::new(vec![CpEntry {
            start: 0,
            len: 5,
            action: CpAction::Drive,
        }])
        .unwrap();
        let err = b.gather(&[cp], &[vec![1, 2]]).unwrap_err();
        assert_eq!(
            err,
            BusError::DataUnderrun {
                node: 0,
                have: 2,
                need: 5
            }
        );
    }

    #[test]
    fn gaps_lower_utilization() {
        let b = bus(2);
        // Drive slots 0 and 2, leave 1 dark.
        let cp0 = CommProgram::new(vec![CpEntry {
            start: 0,
            len: 1,
            action: CpAction::Drive,
        }])
        .unwrap();
        let cp1 = CommProgram::new(vec![CpEntry {
            start: 2,
            len: 1,
            action: CpAction::Drive,
        }])
        .unwrap();
        let out = b.gather(&[cp0, cp1], &[vec![7], vec![9]]).unwrap();
        assert_eq!(out.received, vec![Some(7), None, Some(9)]);
        assert!((out.utilization - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn scatter_delivers_in_order() {
        let b = bus(4);
        let spec = ScatterSpec::interleaved(4, 2, 2);
        let cps = CpCompiler.compile_scatter(&spec, 4);
        let burst: Vec<u64> = (0..16).collect();
        let out = b.scatter(&cps, &burst).unwrap();
        // Node n gets slots {2n, 2n+1, 8+2n, 8+2n+1}.
        for n in 0..4u64 {
            assert_eq!(
                out.delivered[n as usize],
                vec![2 * n, 2 * n + 1, 8 + 2 * n, 8 + 2 * n + 1]
            );
        }
        assert_eq!(out.bits, 16 * 32);
    }

    #[test]
    fn downstream_nodes_complete_later_for_same_slots() {
        let b = bus(8);
        // Both nodes listen to one early slot each, same index distance.
        let mk = |slot| {
            CommProgram::new(vec![CpEntry {
                start: slot,
                len: 1,
                action: CpAction::Listen,
            }])
            .unwrap()
        };
        let cps = vec![mk(0), mk(0)]; // wait: two nodes listening same slot is legal (multicast)
        let out = b.scatter(&cps, &[42]).unwrap();
        let t0 = out.completion[0].unwrap();
        let t1 = out.completion[1].unwrap();
        assert!(t1 > t0, "downstream tap must see the wavefront later");
        assert_eq!(out.delivered[0], vec![42]);
        assert_eq!(out.delivered[1], vec![42]);
    }

    #[test]
    fn scatter_slot_out_of_range_errors() {
        let b = bus(2);
        let cp = CommProgram::new(vec![CpEntry {
            start: 9,
            len: 1,
            action: CpAction::Listen,
        }])
        .unwrap();
        assert!(matches!(
            b.scatter(&[cp], &[1, 2, 3]),
            Err(BusError::DataUnderrun { .. })
        ));
    }

    #[test]
    fn simultaneous_modulation_in_absolute_time_is_legal() {
        // The paper's t4 moment: with enough physical separation, an
        // upstream node modulates wavefront k+m while a downstream node is
        // still modulating wavefront k — in the same absolute instant. Our
        // wavefront-ownership model must accept this.
        let layout = ChipLayout::square(20.0, 64);
        let b = BusSim::new(layout, WavelengthPlan::paper_320g());
        // Node 0 and node 63 are ~half a bus apart; flight between them far
        // exceeds one 100 ps slot. Give node 63 early slots and node 0 late
        // slots so their absolute modulation windows overlap.
        let cp63 = CommProgram::new(vec![CpEntry {
            start: 0,
            len: 8,
            action: CpAction::Drive,
        }])
        .unwrap();
        let cp0 = CommProgram::new(vec![CpEntry {
            start: 8,
            len: 8,
            action: CpAction::Drive,
        }])
        .unwrap();
        let mut cps = vec![CommProgram::empty(); 64];
        cps[63] = cp63;
        cps[0] = cp0;
        let mut data = vec![Vec::new(); 64];
        data[63] = (0..8).collect();
        data[0] = (8..16).collect();
        // Absolute drive windows overlap:
        let d63_end = b.clock().drive_time(63, 7);
        let d0_start = b.clock().drive_time(0, 8);
        assert!(d0_start < d63_end, "windows must overlap for this test");
        // And yet the gather is clean and gap-free.
        let out = b.gather(&cps, &data).unwrap();
        let words: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
        assert_eq!(words, (0..16).collect::<Vec<u64>>());
        assert_eq!(out.utilization, 1.0);
    }

    #[test]
    fn sub_half_slot_timing_error_is_harmless() {
        // §III-A: constant skew within the capture window doesn't matter.
        let mut b = bus(3);
        b.set_timing_error(0, 40); // 40 ps on a 100 ps slot
        b.set_timing_error(1, -45);
        let spec = GatherSpec {
            slot_source: vec![0, 0, 1, 1, 0, 0],
        };
        let cps = CpCompiler.compile_gather(&spec, 3);
        let data = vec![vec![0xA, 0xB, 0xE, 0xF], vec![0xC, 0xD], vec![]];
        let out = b.gather(&cps, &data).unwrap();
        assert_eq!(out.utilization, 1.0);
        let words: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
        assert_eq!(words, vec![0xA, 0xB, 0xC, 0xD, 0xE, 0xF]);
    }

    #[test]
    fn super_half_slot_error_corrupts_the_splice() {
        // A node drifted a full slot late: its bits land on the next
        // wavefront — colliding with its neighbour's share.
        let mut b = bus(3);
        b.set_timing_error(0, 110); // > half of the 100 ps slot
        let spec = GatherSpec {
            slot_source: vec![0, 0, 1, 1],
        };
        let cps = CpCompiler.compile_gather(&spec, 3);
        let data = vec![vec![0xA, 0xB], vec![0xC, 0xD], vec![]];
        match b.gather(&cps, &data) {
            Err(BusError::Collision { slot: 2, .. }) => {} // expected: P0's 2nd bit hits P1's 1st
            other => panic!("expected a wavefront collision, got {other:?}"),
        }
    }

    #[test]
    fn drift_on_the_last_node_leaves_a_gap() {
        // The last contributor drifts late: no collision (nothing behind
        // it) but the burst is no longer gap-free.
        let mut b = bus(2);
        b.set_timing_error(1, 120); // rounds to a one-wavefront shift
        let spec = GatherSpec {
            slot_source: vec![0, 0, 1, 1],
        };
        let cps = CpCompiler.compile_gather(&spec, 2);
        let data = vec![vec![1, 2], vec![3, 4]];
        let out = b.gather(&cps, &data).unwrap();
        assert!(out.utilization < 1.0, "drift must open a gap");
        assert_eq!(out.received[2], None); // slot 2 went dark
        assert_eq!(out.received[3], Some(3)); // shifted by one wavefront
        assert_eq!(out.received[4], Some(4));
    }

    #[test]
    fn transact_delivers_downstream_messages() {
        // Node 0 sends 2 words to node 3; node 1 sends 1 word to node 2 —
        // all on one shared schedule, interleaved with an SCA-style drive.
        let b = bus(4);
        let mk = |entries: Vec<CpEntry>| CommProgram::new(entries).unwrap();
        let cps = vec![
            mk(vec![CpEntry {
                start: 0,
                len: 2,
                action: CpAction::Drive,
            }]),
            mk(vec![CpEntry {
                start: 2,
                len: 1,
                action: CpAction::Drive,
            }]),
            mk(vec![CpEntry {
                start: 2,
                len: 1,
                action: CpAction::Listen,
            }]),
            mk(vec![CpEntry {
                start: 0,
                len: 2,
                action: CpAction::Listen,
            }]),
        ];
        let data = vec![vec![10, 11], vec![22], vec![], vec![]];
        let out = b.transact(&cps, &data).unwrap();
        assert_eq!(out.delivered[2], vec![22]);
        assert_eq!(out.delivered[3], vec![10, 11]);
        // Node 2's last listen slot (slot 2) launches after node 3's pair
        // (slots 0–1), but node 3 sits further down the waveguide and its
        // tap skew exceeds the slot period, so node 3 completes later.
        assert!(out.completion[3].unwrap() > out.completion[2].unwrap());
        // The terminus still sees the full coalesced stream.
        assert_eq!(out.gather.received, vec![Some(10), Some(11), Some(22)]);
    }

    #[test]
    fn transact_rejects_upstream_listening() {
        // Node 2 drives; node 1 (upstream) tries to listen: physically
        // impossible on a directional waveguide.
        let b = bus(3);
        let cps = vec![
            CommProgram::empty(),
            CommProgram::new(vec![CpEntry {
                start: 0,
                len: 1,
                action: CpAction::Listen,
            }])
            .unwrap(),
            CommProgram::new(vec![CpEntry {
                start: 0,
                len: 1,
                action: CpAction::Drive,
            }])
            .unwrap(),
        ];
        let data = vec![vec![], vec![], vec![7]];
        let err = b.transact(&cps, &data).unwrap_err();
        assert_eq!(
            err,
            BusError::Unreachable {
                slot: 0,
                driver: 2,
                listener: 1
            }
        );
    }

    #[test]
    fn transact_rejects_dark_slot_listening() {
        let b = bus(2);
        let cps = vec![
            CommProgram::new(vec![CpEntry {
                start: 0,
                len: 1,
                action: CpAction::Drive,
            }])
            .unwrap(),
            CommProgram::new(vec![CpEntry {
                start: 5,
                len: 1,
                action: CpAction::Listen,
            }])
            .unwrap(),
        ];
        let err = b.transact(&cps, &[vec![1], vec![]]).unwrap_err();
        assert!(matches!(err, BusError::Unreachable { slot: 5, .. }));
    }

    #[test]
    fn empty_gather_is_empty() {
        let b = bus(2);
        let out = b
            .gather(
                &[CommProgram::empty(), CommProgram::empty()],
                &[vec![], vec![]],
            )
            .unwrap();
        assert!(out.received.iter().all(|w| w.is_none()) || out.received.is_empty());
        assert_eq!(out.bits, 0);
    }
}
