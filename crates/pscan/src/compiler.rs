//! CP compilation from abstract transfer specifications.
//!
//! The paper leaves "generation of distributed communication programs from
//! abstract programmer constructs" as future work (§VIII); this module
//! implements the essential version of it. A gather is fully described by a
//! *slot map*: for each global slot of the synthesized burst, which node
//! contributes it. A scatter is the mirror: for each slot of the monolithic
//! burst, which node must capture it. The compiler coalesces per-node slot
//! runs into minimal CPs and proves the set collision-free by construction.

use serde::{Deserialize, Serialize};

use crate::cp::{CommProgram, CpAction, CpEntry};
use crate::NodeId;

/// A gather (SCA): `slot_source[k]` is the node whose data occupies global
/// slot `k` of the coalesced burst arriving at the terminus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatherSpec {
    /// Source node per slot, in burst order.
    pub slot_source: Vec<NodeId>,
}

/// A scatter (SCA⁻¹): `slot_dest[k]` is the node that must detect global
/// slot `k` of the head node's monolithic burst.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScatterSpec {
    /// Destination node per slot, in burst order.
    pub slot_dest: Vec<NodeId>,
}

impl GatherSpec {
    /// Round-robin interleave: `nodes` sources, `block` consecutive slots
    /// per turn, `turns` turns each. Models a transpose writeback where each
    /// processor's row elements interleave in linear memory order.
    pub fn interleaved(nodes: usize, block: usize, turns: usize) -> Self {
        assert!(nodes > 0 && block > 0);
        let mut slot_source = Vec::with_capacity(nodes * block * turns);
        for _ in 0..turns {
            for n in 0..nodes {
                slot_source.extend(std::iter::repeat_n(n, block));
            }
        }
        GatherSpec { slot_source }
    }

    /// Blocked layout: node 0's `block` slots, then node 1's, etc. Models a
    /// simple result writeback (Model I wind-down).
    pub fn blocked(nodes: usize, block: usize) -> Self {
        Self::interleaved(nodes, block, 1)
    }

    /// Number of slots each node contributes.
    pub fn slots_per_node(&self, nodes: usize) -> Vec<u64> {
        let mut counts = vec![0u64; nodes];
        for &n in &self.slot_source {
            counts[n] += 1;
        }
        counts
    }

    /// Total slots in the burst.
    pub fn total_slots(&self) -> u64 {
        self.slot_source.len() as u64
    }
}

impl ScatterSpec {
    /// Round-robin interleave, mirror of [`GatherSpec::interleaved`].
    /// Models Model-II blocked data delivery (Fig. 9).
    pub fn interleaved(nodes: usize, block: usize, turns: usize) -> Self {
        ScatterSpec {
            slot_dest: GatherSpec::interleaved(nodes, block, turns).slot_source,
        }
    }

    /// Blocked layout, mirror of [`GatherSpec::blocked`]. Models Model-I
    /// delivery (Fig. 8).
    pub fn blocked(nodes: usize, block: usize) -> Self {
        Self::interleaved(nodes, block, 1)
    }

    /// Total slots in the burst.
    pub fn total_slots(&self) -> u64 {
        self.slot_dest.len() as u64
    }
}

/// The compiler: slot maps in, per-node [`CommProgram`]s out.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpCompiler;

impl CpCompiler {
    /// Compile a gather into one Drive-CP per node (plus implicit Pass).
    ///
    /// The resulting programs are disjoint by construction: slot `k` appears
    /// in exactly the CP of `spec.slot_source[k]`.
    pub fn compile_gather(&self, spec: &GatherSpec, nodes: usize) -> Vec<CommProgram> {
        Self::compile_map(&spec.slot_source, nodes, CpAction::Drive)
    }

    /// Compile a scatter into one Listen-CP per node.
    pub fn compile_scatter(&self, spec: &ScatterSpec, nodes: usize) -> Vec<CommProgram> {
        Self::compile_map(&spec.slot_dest, nodes, CpAction::Listen)
    }

    fn compile_map(map: &[NodeId], nodes: usize, action: CpAction) -> Vec<CommProgram> {
        let mut runs: Vec<Vec<CpEntry>> = vec![Vec::new(); nodes];
        let mut k = 0u64;
        while (k as usize) < map.len() {
            let node = map[k as usize];
            assert!(node < nodes, "slot {k} names node {node} >= {nodes}");
            let start = k;
            while (k as usize) < map.len() && map[k as usize] == node {
                k += 1;
            }
            runs[node].push(CpEntry {
                start,
                len: k - start,
                action,
            });
        }
        runs.into_iter()
            .map(|entries| CommProgram::new(entries).expect("compiler produced invalid CP"))
            .collect()
    }

    /// Check that a set of per-node CPs is globally disjoint in its Drive
    /// slots, returning the offending slot on failure. Used as an
    /// independent audit of hand-written CPs.
    pub fn audit_disjoint(programs: &[CommProgram]) -> Result<(), u64> {
        let mut runs: Vec<(u64, u64)> = programs
            .iter()
            .flat_map(|p| {
                p.entries()
                    .iter()
                    .filter(|e| e.action == CpAction::Drive)
                    .map(|e| (e.start, e.end()))
            })
            .collect();
        runs.sort_unstable();
        for w in runs.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(w[1].0);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_gather_compiles_to_one_run_per_node() {
        let spec = GatherSpec::blocked(4, 8);
        let cps = CpCompiler.compile_gather(&spec, 4);
        assert_eq!(cps.len(), 4);
        for (n, cp) in cps.iter().enumerate() {
            assert_eq!(cp.entries().len(), 1);
            let e = cp.entries()[0];
            assert_eq!(e.start, (n as u64) * 8);
            assert_eq!(e.len, 8);
            assert_eq!(e.action, CpAction::Drive);
        }
    }

    #[test]
    fn interleaved_gather_has_turns_many_runs() {
        let spec = GatherSpec::interleaved(4, 2, 3);
        let cps = CpCompiler.compile_gather(&spec, 4);
        for cp in &cps {
            assert_eq!(cp.entries().len(), 3);
            assert_eq!(cp.slots_driven(), 6);
        }
        assert!(CpCompiler::audit_disjoint(&cps).is_ok());
    }

    #[test]
    fn fig4_two_node_interleave() {
        // Fig. 4: P0 drives slots {0,1} and {4,5}; P1 drives {2,3}.
        let spec = GatherSpec {
            slot_source: vec![0, 0, 1, 1, 0, 0],
        };
        let cps = CpCompiler.compile_gather(&spec, 2);
        assert_eq!(
            cps[0].entries(),
            &[
                CpEntry {
                    start: 0,
                    len: 2,
                    action: CpAction::Drive
                },
                CpEntry {
                    start: 4,
                    len: 2,
                    action: CpAction::Drive
                },
            ]
        );
        assert_eq!(
            cps[1].entries(),
            &[CpEntry {
                start: 2,
                len: 2,
                action: CpAction::Drive
            }]
        );
    }

    #[test]
    fn scatter_mirrors_gather() {
        let spec = ScatterSpec::interleaved(3, 4, 2);
        let cps = CpCompiler.compile_scatter(&spec, 3);
        for cp in &cps {
            assert_eq!(cp.slots_listened(), 8);
            assert_eq!(cp.slots_driven(), 0);
        }
    }

    #[test]
    fn audit_catches_overlap() {
        let a = CommProgram::new(vec![CpEntry {
            start: 0,
            len: 4,
            action: CpAction::Drive,
        }])
        .unwrap();
        let b = CommProgram::new(vec![CpEntry {
            start: 3,
            len: 2,
            action: CpAction::Drive,
        }])
        .unwrap();
        assert_eq!(CpCompiler::audit_disjoint(&[a, b]), Err(3));
    }

    #[test]
    fn slots_per_node_counts() {
        let spec = GatherSpec::interleaved(4, 2, 5);
        assert_eq!(spec.slots_per_node(4), vec![10, 10, 10, 10]);
        assert_eq!(spec.total_slots(), 40);
    }

    #[test]
    fn nodes_without_slots_get_empty_programs() {
        let spec = GatherSpec {
            slot_source: vec![1, 1],
        };
        let cps = CpCompiler.compile_gather(&spec, 3);
        assert!(cps[0].entries().is_empty());
        assert_eq!(cps[1].slots_driven(), 2);
        assert!(cps[2].entries().is_empty());
    }
}
