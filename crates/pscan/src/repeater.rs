//! Repeater-linked PSCAN segments — paper §III-B.
//!
//! "Individual PSCAN segments can be linked via repeaters to form larger
//! networks." A repeater is an O-E-O stage: it detects the fully coalesced
//! stream arriving at the end of one segment and re-drives it, at full
//! power, into the head of the next, where that segment's local nodes
//! splice their own slots into the still-dark wavefronts.
//!
//! The model chains [`BusSim`] segments: the upstream partial stream enters
//! segment `s+1` as a head-end transmitter owning exactly the slots already
//! filled; ownership disjointness therefore remains global across the whole
//! chain, and the final terminus sees one coalesced burst spanning every
//! segment's contributors.

use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use sim_core::time::Duration;

use crate::bus::{BusError, BusSim};
use crate::compiler::GatherSpec;
use crate::cp::{CommProgram, CpAction, CpEntry};
use crate::NodeId;

/// A chain of PSCAN segments joined by O-E-O repeaters.
#[derive(Debug, Clone)]
pub struct RepeatedPscan {
    segments: Vec<BusSim>,
    nodes_per_segment: usize,
    /// O-E-O retiming latency per repeater.
    pub repeater_latency: Duration,
}

/// Outcome of a chained gather.
#[derive(Debug, Clone)]
pub struct ChainOutcome {
    /// The final coalesced stream (slot-indexed).
    pub received: Vec<Option<u64>>,
    /// Utilization of the final burst.
    pub utilization: f64,
    /// Total latency: per-segment spans plus repeater retimes.
    pub latency: Duration,
    /// Repeaters traversed.
    pub repeaters: usize,
}

impl RepeatedPscan {
    /// A chain of `segments` segments, each a square serpentine of
    /// `nodes_per_segment` taps on its own `die_mm` die.
    pub fn new(segments: usize, nodes_per_segment: usize, die_mm: f64) -> Self {
        assert!(segments >= 1 && nodes_per_segment >= 1);
        // Each segment needs one extra head tap for the repeater's
        // re-drive (segment 0's head tap goes unused).
        let seg = (0..segments)
            .map(|_| {
                BusSim::new(
                    ChipLayout::square(die_mm, nodes_per_segment + 1),
                    WavelengthPlan::paper_320g(),
                )
            })
            .collect();
        RepeatedPscan {
            segments: seg,
            nodes_per_segment,
            repeater_latency: Duration::from_ns(2),
        }
    }

    /// Total taps across the chain.
    pub fn nodes(&self) -> usize {
        self.segments.len() * self.nodes_per_segment
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Map a global node id to `(segment, local tap)` — local tap 0 is the
    /// repeater/head position, so locals start at 1.
    pub fn locate(&self, node: NodeId) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} out of range");
        (
            node / self.nodes_per_segment,
            node % self.nodes_per_segment + 1,
        )
    }

    /// Execute a gather across the whole chain.
    pub fn gather(&self, spec: &GatherSpec, data: &[Vec<u64>]) -> Result<ChainOutcome, BusError> {
        assert_eq!(data.len(), self.nodes(), "one data vector per global node");
        let total_slots = spec.total_slots() as usize;

        // Current partial stream entering the segment (None = dark slot).
        let mut stream: Vec<Option<u64>> = vec![None; total_slots];
        let mut latency = Duration::ZERO;

        for (s, bus) in self.segments.iter().enumerate() {
            // Local programs: tap 0 re-drives the upstream-owned slots;
            // taps 1.. drive their own shares.
            let locals = self.nodes_per_segment + 1;
            let mut programs = vec![CommProgram::empty(); locals];
            let mut seg_data: Vec<Vec<u64>> = vec![Vec::new(); locals];

            // Repeater program: contiguous runs over filled slots.
            let mut entries = Vec::new();
            let mut k = 0usize;
            while k < total_slots {
                if stream[k].is_some() {
                    let start = k;
                    while k < total_slots && stream[k].is_some() {
                        seg_data[0].push(stream[k].expect("filled"));
                        k += 1;
                    }
                    entries.push(CpEntry {
                        start: start as u64,
                        len: (k - start) as u64,
                        action: CpAction::Drive,
                    });
                } else {
                    k += 1;
                }
            }
            programs[0] = CommProgram::new(entries).expect("runs are disjoint");

            // Build local CPs from the spec restricted to this segment.
            let local_map: Vec<Option<usize>> = spec
                .slot_source
                .iter()
                .map(|&src| {
                    let (seg, local) = self.locate(src);
                    (seg == s).then_some(local)
                })
                .collect();
            for (slot, maybe_local) in local_map.iter().enumerate() {
                if let Some(local) = maybe_local {
                    let global = spec.slot_source[slot];
                    let word_idx = seg_data[*local].len();
                    // Consume the source node's words in slot order.
                    seg_data[*local].push(data[global][word_idx]);
                }
            }
            // Compile local drive CPs by scanning runs per local tap.
            #[allow(clippy::needless_range_loop)] // `local` indexes both local_map and programs
            for local in 1..locals {
                let mut entries = Vec::new();
                let mut k = 0usize;
                while k < total_slots {
                    if local_map[k] == Some(local) {
                        let start = k;
                        while k < total_slots && local_map[k] == Some(local) {
                            k += 1;
                        }
                        entries.push(CpEntry {
                            start: start as u64,
                            len: (k - start) as u64,
                            action: CpAction::Drive,
                        });
                    } else {
                        k += 1;
                    }
                }
                programs[local] = CommProgram::new(entries).expect("runs disjoint");
            }

            let out = bus.gather(&programs, &seg_data)?;
            latency += out.last_arrival.saturating_since(out.first_arrival);
            latency += bus.layout().end_to_end();
            if s + 1 < self.segments.len() {
                latency += self.repeater_latency;
            }
            // Merge: this segment's output becomes the next input.
            for (k, w) in out.received.iter().enumerate() {
                if w.is_some() {
                    stream[k] = *w;
                }
            }
        }

        let filled = stream.iter().flatten().count();
        let utilization = if total_slots == 0 {
            0.0
        } else {
            filled as f64 / total_slots as f64
        };
        Ok(ChainOutcome {
            received: stream,
            utilization,
            latency,
            repeaters: self.segments.len() - 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_segment_gather_coalesces_globally() {
        // 2 segments x 4 nodes; interleave all 8 nodes slot-by-slot.
        let chain = RepeatedPscan::new(2, 4, 20.0);
        assert_eq!(chain.nodes(), 8);
        let spec = GatherSpec::interleaved(8, 1, 4); // 32 slots
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64 * 100; 4]).collect();
        let out = chain.gather(&spec, &data).unwrap();
        assert_eq!(out.utilization, 1.0);
        assert_eq!(out.repeaters, 1);
        for (slot, w) in out.received.iter().enumerate() {
            assert_eq!(w.unwrap(), (slot % 8) as u64 * 100, "slot {slot}");
        }
    }

    #[test]
    fn single_segment_has_no_repeaters() {
        let chain = RepeatedPscan::new(1, 4, 20.0);
        let spec = GatherSpec::blocked(4, 2);
        let data: Vec<Vec<u64>> = (0..4).map(|n| vec![n as u64; 2]).collect();
        let out = chain.gather(&spec, &data).unwrap();
        assert_eq!(out.repeaters, 0);
        assert_eq!(out.utilization, 1.0);
    }

    #[test]
    fn latency_grows_with_segment_count() {
        let spec = GatherSpec::blocked(8, 2);
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 2]).collect();
        let one = RepeatedPscan::new(1, 8, 20.0).gather(&spec, &data).unwrap();
        let four = RepeatedPscan::new(4, 2, 20.0).gather(&spec, &data).unwrap();
        assert!(four.latency > one.latency);
        assert_eq!(one.received, four.received);
    }

    #[test]
    fn locate_maps_globals_to_segments() {
        let chain = RepeatedPscan::new(3, 4, 20.0);
        assert_eq!(chain.locate(0), (0, 1));
        assert_eq!(chain.locate(3), (0, 4));
        assert_eq!(chain.locate(4), (1, 1));
        assert_eq!(chain.locate(11), (2, 4));
    }

    #[test]
    fn audit_passes_on_chain_programs() {
        // The per-segment programs (repeater + locals) must be disjoint —
        // exercised implicitly by gather succeeding with utilization 1.0 on
        // an adversarial fine interleave.
        let chain = RepeatedPscan::new(2, 2, 20.0);
        let spec = GatherSpec {
            slot_source: vec![3, 0, 2, 1, 3, 0, 1, 2],
        };
        let mut data = vec![Vec::new(); 4];
        for (slot, &n) in spec.slot_source.iter().enumerate() {
            data[n].push(slot as u64);
        }
        let out = chain.gather(&spec, &data).unwrap();
        let words: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
        assert_eq!(words, (0..8).collect::<Vec<u64>>());
    }
}
