//! Communication Programs (CPs).
//!
//! A CP "comprises non-overlapping portions of a global schedule that is
//! relative to the waveguide clock ... the program specifies when the
//! waveguide is available for any one processor to modulate light" (§III).
//!
//! Slots are indexed by global clock-edge number. Any slot a CP does not
//! mention is implicitly `Pass` — the node lets incident energy through
//! unmodified, which is what makes the splice work.

use serde::{Deserialize, Serialize};

/// What a node does with the wavefronts of a slot range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpAction {
    /// Modulate local data onto the data wavelength (SCA contribution).
    Drive,
    /// Detect the data wavelength into the local FIFO (SCA⁻¹ delivery).
    Listen,
}

/// One contiguous run of slots with a single action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpEntry {
    /// First global slot of the run.
    pub start: u64,
    /// Number of slots (must be ≥ 1).
    pub len: u64,
    /// What to do during the run.
    pub action: CpAction,
}

impl CpEntry {
    /// Exclusive end slot.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `slot` lies inside this entry.
    pub fn contains(&self, slot: u64) -> bool {
        (self.start..self.end()).contains(&slot)
    }
}

/// A node's complete communication program: an ordered, non-overlapping
/// list of slot runs.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommProgram {
    entries: Vec<CpEntry>,
}

/// Why a CP failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpError {
    /// An entry has zero length.
    EmptyEntry { index: usize },
    /// Entries are not sorted by start slot or overlap each other.
    OverlapOrDisorder { index: usize },
}

impl std::fmt::Display for CpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpError::EmptyEntry { index } => write!(f, "CP entry {index} has zero length"),
            CpError::OverlapOrDisorder { index } => {
                write!(f, "CP entry {index} overlaps or precedes its predecessor")
            }
        }
    }
}

impl std::error::Error for CpError {}

impl CommProgram {
    /// Build a CP from entries, validating order and disjointness.
    pub fn new(entries: Vec<CpEntry>) -> Result<Self, CpError> {
        for (i, e) in entries.iter().enumerate() {
            if e.len == 0 {
                return Err(CpError::EmptyEntry { index: i });
            }
            if i > 0 && e.start < entries[i - 1].end() {
                return Err(CpError::OverlapOrDisorder { index: i });
            }
        }
        Ok(CommProgram { entries })
    }

    /// An empty (all-Pass) program.
    pub fn empty() -> Self {
        CommProgram::default()
    }

    /// The entries, in slot order.
    pub fn entries(&self) -> &[CpEntry] {
        &self.entries
    }

    /// Action at `slot`, or `None` for Pass.
    pub fn action_at(&self, slot: u64) -> Option<CpAction> {
        // Entries are sorted; binary-search the candidate run.
        let idx = self.entries.partition_point(|e| e.end() <= slot);
        self.entries
            .get(idx)
            .filter(|e| e.contains(slot))
            .map(|e| e.action)
    }

    /// Total slots the program drives.
    pub fn slots_driven(&self) -> u64 {
        self.action_slots(CpAction::Drive)
    }

    /// Total slots the program listens on.
    pub fn slots_listened(&self) -> u64 {
        self.action_slots(CpAction::Listen)
    }

    fn action_slots(&self, a: CpAction) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.action == a)
            .map(|e| e.len)
            .sum()
    }

    /// Iterate `(slot, action)` over all scheduled slots.
    pub fn iter_slots(&self) -> impl Iterator<Item = (u64, CpAction)> + '_ {
        self.entries
            .iter()
            .flat_map(|e| (e.start..e.end()).map(move |s| (s, e.action)))
    }

    /// First scheduled slot, if any.
    pub fn first_slot(&self) -> Option<u64> {
        self.entries.first().map(|e| e.start)
    }

    /// Last scheduled slot (inclusive), if any.
    pub fn last_slot(&self) -> Option<u64> {
        self.entries.last().map(|e| e.end() - 1)
    }

    /// Size of the hardware encoding in bits.
    ///
    /// Encoding: per entry, 1 action bit + 32-bit start + 15-bit length
    /// = 48 bits. The paper notes "CPs can be quite small, with the program
    /// for FFT being approximately 96-bits" — i.e. two entries, which is
    /// exactly what the FFT gather/scatter compiles to per node.
    pub fn encoded_bits(&self) -> usize {
        self.entries.len() * 48
    }

    /// Serialize to the 48-bit-per-entry wire format, packed into u64 words
    /// (one entry per word; the high 16 bits are zero). This is what rides
    /// the SCA⁻¹ when CPs are "delivered, along with operational code to the
    /// processor ... interleaved with data delivery" (§IV).
    pub fn encode_words(&self) -> Vec<u64> {
        self.entries
            .iter()
            .map(|e| {
                assert!(e.start < (1 << 32), "start slot exceeds 32-bit field");
                assert!(e.len < (1 << 15), "run length exceeds 15-bit field");
                let action = match e.action {
                    CpAction::Drive => 0u64,
                    CpAction::Listen => 1u64,
                };
                (action << 47) | (e.start << 15) | e.len
            })
            .collect()
    }

    /// Deserialize from [`Self::encode_words`] output.
    pub fn decode_words(words: &[u64]) -> Result<Self, CpError> {
        let entries = words
            .iter()
            .map(|&w| CpEntry {
                start: (w >> 15) & 0xFFFF_FFFF,
                len: w & 0x7FFF,
                action: if (w >> 47) & 1 == 1 {
                    CpAction::Listen
                } else {
                    CpAction::Drive
                },
            })
            .collect();
        CommProgram::new(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(entries: &[(u64, u64, CpAction)]) -> CommProgram {
        CommProgram::new(
            entries
                .iter()
                .map(|&(start, len, action)| CpEntry { start, len, action })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn action_lookup() {
        let p = cp(&[(2, 2, CpAction::Drive), (6, 3, CpAction::Listen)]);
        assert_eq!(p.action_at(0), None);
        assert_eq!(p.action_at(2), Some(CpAction::Drive));
        assert_eq!(p.action_at(3), Some(CpAction::Drive));
        assert_eq!(p.action_at(4), None);
        assert_eq!(p.action_at(8), Some(CpAction::Listen));
        assert_eq!(p.action_at(9), None);
    }

    #[test]
    fn rejects_overlap() {
        let err = CommProgram::new(vec![
            CpEntry {
                start: 0,
                len: 3,
                action: CpAction::Drive,
            },
            CpEntry {
                start: 2,
                len: 1,
                action: CpAction::Drive,
            },
        ])
        .unwrap_err();
        assert_eq!(err, CpError::OverlapOrDisorder { index: 1 });
    }

    #[test]
    fn rejects_disorder() {
        let err = CommProgram::new(vec![
            CpEntry {
                start: 5,
                len: 1,
                action: CpAction::Drive,
            },
            CpEntry {
                start: 0,
                len: 1,
                action: CpAction::Drive,
            },
        ])
        .unwrap_err();
        assert_eq!(err, CpError::OverlapOrDisorder { index: 1 });
    }

    #[test]
    fn rejects_empty_entry() {
        let err = CommProgram::new(vec![CpEntry {
            start: 0,
            len: 0,
            action: CpAction::Drive,
        }])
        .unwrap_err();
        assert_eq!(err, CpError::EmptyEntry { index: 0 });
    }

    #[test]
    fn adjacent_entries_are_legal() {
        let p = cp(&[(0, 2, CpAction::Drive), (2, 2, CpAction::Listen)]);
        assert_eq!(p.slots_driven(), 2);
        assert_eq!(p.slots_listened(), 2);
    }

    #[test]
    fn slot_iteration_covers_everything() {
        let p = cp(&[(1, 2, CpAction::Drive), (5, 1, CpAction::Listen)]);
        let slots: Vec<_> = p.iter_slots().collect();
        assert_eq!(
            slots,
            vec![
                (1, CpAction::Drive),
                (2, CpAction::Drive),
                (5, CpAction::Listen)
            ]
        );
        assert_eq!(p.first_slot(), Some(1));
        assert_eq!(p.last_slot(), Some(5));
    }

    #[test]
    fn fft_cp_is_about_96_bits() {
        // A node's FFT program: one Listen run (its SCA⁻¹ delivery) and one
        // Drive run (its SCA writeback contribution) -> 2 entries x 48 bits.
        let p = cp(&[(0, 1024, CpAction::Listen), (90_000, 1024, CpAction::Drive)]);
        assert_eq!(p.encoded_bits(), 96);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = cp(&[
            (0, 1024, CpAction::Listen),
            (90_000, 1024, CpAction::Drive),
            (200_000, 1, CpAction::Drive),
        ]);
        let words = p.encode_words();
        assert_eq!(words.len(), 3);
        let back = CommProgram::decode_words(&words).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    #[should_panic(expected = "15-bit field")]
    fn encode_rejects_oversized_runs() {
        let p = cp(&[(0, 1 << 15, CpAction::Drive)]);
        p.encode_words();
    }

    #[test]
    fn empty_program() {
        let p = CommProgram::empty();
        assert_eq!(p.first_slot(), None);
        assert_eq!(p.slots_driven(), 0);
        assert_eq!(p.action_at(123), None);
    }
}
