//! CRC-32 over bus words — the gather integrity check.
//!
//! A real PSCAN terminus cannot trust the photodiode bit-for-bit: the link
//! budget engineers the BER down to ~10⁻¹², not zero, and thermal drift
//! erodes the margin further. The head node therefore checksums each
//! coalesced burst and compares against the CRC the communication programs
//! commit to, exactly as the Photonic Fabric–class interconnects ship
//! link-level CRC with retry. This module is the (software-modelled)
//! polynomial: CRC-32/IEEE (reflected, poly 0xEDB88320), applied to each
//! 64-bit bus word in little-endian byte order.

/// CRC-32 (IEEE 802.3, reflected) of a byte slice, seedable for streaming.
fn crc32_bytes(mut crc: u32, bytes: &[u8]) -> u32 {
    crc = !crc;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// CRC-32 of a sequence of 64-bit bus words (little-endian byte order),
/// continuing from a previous checksum (`0` to start).
pub fn crc32_words_update(crc: u32, words: &[u64]) -> u32 {
    let mut c = crc;
    for w in words {
        c = crc32_bytes(c, &w.to_le_bytes());
    }
    c
}

/// CRC-32 of a sequence of 64-bit bus words.
pub fn crc32_words(words: &[u64]) -> u32 {
    crc32_words_update(0, words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_check_vector() {
        // CRC-32/IEEE("123456789") = 0xCBF43926.
        assert_eq!(crc32_bytes(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32_words(&[]), 0);
        assert_eq!(crc32_bytes(0, b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let words: Vec<u64> = (0..37).map(|i| i * 0x9E37_79B9).collect();
        let full = crc32_words(&words);
        let (a, b) = words.split_at(13);
        assert_eq!(crc32_words_update(crc32_words(a), b), full);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        // CRC-32 detects all single-bit errors by construction; exercise a
        // spread of positions.
        let words: Vec<u64> = (0..16).map(|i| 0xDEAD_BEEF ^ (i << 40)).collect();
        let clean = crc32_words(&words);
        for word in [0usize, 7, 15] {
            for bit in [0u32, 1, 31, 32, 63] {
                let mut w = words.clone();
                w[word] ^= 1u64 << bit;
                assert_ne!(crc32_words(&w), clean, "word {word} bit {bit}");
            }
        }
    }

    #[test]
    fn order_matters() {
        assert_ne!(crc32_words(&[1, 2]), crc32_words(&[2, 1]));
    }
}
