//! Waveform tracing: render what an oscilloscope probing the waveguide
//! would show — the paper's Fig. 4 timing diagram, regenerated from the
//! simulation rather than drawn by hand.
//!
//! At waveguide position `x` and absolute time `t`, the data wavelength
//! `λ_d` carries whichever wavefront is passing: `k = (t − flight(x)) /
//! period`. If some node's CP owns wavefront `k` *and* that node lies
//! upstream of `x`, the probe sees modulated light (we print the owner's
//! digit); otherwise it sees un-modulated carrier (`.`). The clock `λ_c`
//! ticks every period regardless.

use crate::bus::BusSim;
use crate::cp::{CommProgram, CpAction};
use crate::NodeId;

/// One probe's rendered waveform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waveform {
    /// Label (e.g. "x0").
    pub label: String,
    /// One char per slot: node digit (modulated), '.' (dark carrier), or
    /// ' ' (wavefront not yet arrived).
    pub lanes: String,
}

/// Render waveforms at `probe_taps` (observation points placed at those
/// taps' positions) for slots `0..n_slots`, given the drive programs.
pub fn render_waveforms(
    bus: &BusSim,
    programs: &[CommProgram],
    probe_taps: &[usize],
    n_slots: u64,
) -> Vec<Waveform> {
    // Ownership per wavefront.
    let mut owner: Vec<Option<NodeId>> = vec![None; n_slots as usize];
    for (node, cp) in programs.iter().enumerate() {
        for (slot, action) in cp.iter_slots() {
            if action == CpAction::Drive && slot < n_slots {
                owner[slot as usize] = Some(node);
            }
        }
    }
    let layout = bus.layout();
    probe_taps
        .iter()
        .map(|&tap| {
            let x_mm = layout.tap_position_mm(tap);
            let mut lanes = String::with_capacity(n_slots as usize);
            for k in 0..n_slots {
                // Wavefront k passes the probe carrying node `o`'s bits iff
                // o is at or upstream of the probe position.
                let c = match owner[k as usize] {
                    Some(o) if layout.tap_position_mm(o) <= x_mm + 1e-9 => {
                        char::from_digit((o % 36) as u32, 36).unwrap_or('#')
                    }
                    _ => '.',
                };
                lanes.push(c);
            }
            Waveform {
                label: format!("x{tap}"),
                lanes,
            }
        })
        .collect()
}

/// Render the clock lane: one tick per slot.
pub fn clock_lane(n_slots: u64) -> String {
    (0..n_slots)
        .map(|k| char::from_digit((k % 10) as u32, 10).unwrap())
        .collect()
}

/// Export the probe waveforms as a VCD document (viewable in GTKWave):
/// a 1-bit clock plus, per probe, a 1-bit "modulated" wire and an 8-bit
/// "driver" vector (0xFF = dark). Timestamps are real simulated
/// picoseconds: each probe's lane is delayed by its optical flight time,
/// so the viewer shows the same skew staircase as the paper's Fig. 4.
pub fn to_vcd(
    bus: &BusSim,
    programs: &[CommProgram],
    probe_taps: &[usize],
    n_slots: u64,
) -> String {
    use sim_core::vcd::VcdWriter;

    let period = bus.clock().period;
    let waves = render_waveforms(bus, programs, probe_taps, n_slots);
    let mut v = VcdWriter::new();
    let clk = v.add_signal("clk", 1);
    let sigs: Vec<_> = probe_taps
        .iter()
        .map(|&tap| {
            (
                v.add_signal(&format!("x{tap}_modulated"), 1),
                v.add_signal(&format!("x{tap}_driver"), 8),
                bus.clock().skew(tap),
            )
        })
        .collect();

    // Merge all events into one monotone stream: (time_ps, action).
    let mut events: Vec<(u64, usize, u64, u64)> = Vec::new(); // (t, sig_idx, mod, drv)
    for k in 0..n_slots {
        for (p, (_, _, skew)) in sigs.iter().enumerate() {
            let t = (bus.clock().origin + period * k + *skew).as_ps();
            let c = waves[p].lanes.as_bytes()[k as usize] as char;
            let (m, d) = match c.to_digit(36) {
                Some(n) => (1u64, n as u64),
                None => (0u64, 0xFF),
            };
            events.push((t, p, m, d));
        }
    }
    events.sort_unstable();
    // Clock edges at the origin.
    let mut clock_events: Vec<u64> = (0..=n_slots)
        .map(|k| (bus.clock().origin + period * k).as_ps())
        .collect();
    clock_events.dedup();

    // Interleave clock and probe events monotonically.
    let mut all: Vec<(u64, Option<usize>, u64, u64)> = events
        .into_iter()
        .map(|(t, p, m, d)| (t, Some(p), m, d))
        .chain(clock_events.into_iter().map(|t| (t, None, 0, 0)))
        .collect();
    all.sort_by_key(|e| (e.0, e.1.map_or(0, |p| p + 1)));
    let mut clk_v = 0u64;
    for (t, p, m, d) in all {
        let time = sim_core::Time::from_ps(t);
        match p {
            None => {
                clk_v ^= 1;
                v.change(time, clk, clk_v);
            }
            Some(p) => {
                v.change(time, sigs[p].0, m);
                v.change(time, sigs[p].1, d);
            }
        }
    }
    v.render("pscan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{CpCompiler, GatherSpec};
    use photonics::waveguide::ChipLayout;
    use photonics::wdm::WavelengthPlan;

    fn fig4_setup() -> (BusSim, Vec<CommProgram>) {
        let bus = BusSim::new(ChipLayout::square(20.0, 3), WavelengthPlan::paper_320g());
        let spec = GatherSpec {
            slot_source: vec![0, 0, 1, 1, 0, 0],
        };
        (bus.clone(), CpCompiler.compile_gather(&spec, 3))
    }

    #[test]
    fn fig4_waveforms() {
        let (bus, cps) = fig4_setup();
        let w = render_waveforms(&bus, &cps, &[0, 1, 2], 6);
        // At x0 (P0's tap) only P0's own slots are modulated: P1 is
        // downstream, so its light never appears here.
        assert_eq!(w[0].lanes, "00..00");
        // At x1 both contributions are visible (P0 upstream, P1 local).
        assert_eq!(w[1].lanes, "001100");
        // At x2 (the receiver) the burst is complete and gap-free.
        assert_eq!(w[2].lanes, "001100");
        assert_eq!(clock_lane(6), "012345");
    }

    #[test]
    fn dark_slots_show_as_carrier() {
        let (bus, _) = fig4_setup();
        let cps = vec![CommProgram::empty(); 3];
        let w = render_waveforms(&bus, &cps, &[2], 4);
        assert_eq!(w[0].lanes, "....");
    }

    #[test]
    fn vcd_export_is_wellformed() {
        let (bus, cps) = fig4_setup();
        let vcd = to_vcd(&bus, &cps, &[0, 1, 2], 6);
        assert!(vcd.contains("$timescale 1ps $end"));
        assert!(vcd.contains("x0_modulated"));
        assert!(vcd.contains("x2_driver"));
        // Clock toggles 7 times (edges 0..=6).
        assert!(vcd.matches("\n1!").count() + vcd.matches("\n0!").count() >= 7);
        // Probe timestamps reflect the skew staircase: x2's first event is
        // later than x0's.
        let first_ts = vcd.lines().find(|l| l.starts_with('#')).unwrap();
        assert_eq!(first_ts, "#0");
    }

    #[test]
    fn labels_follow_taps() {
        let (bus, cps) = fig4_setup();
        let w = render_waveforms(&bus, &cps, &[2, 0], 2);
        assert_eq!(w[0].label, "x2");
        assert_eq!(w[1].label, "x0");
    }
}
