//! Photonic fault model for the PSCAN: BER-derived word corruption, and the
//! link-layer recovery protocol (CRC per gather + bounded retry).
//!
//! The physical chain is: thermal drift detunes the receive rings →
//! residual detuning attenuates the dropped optical power → the receiver's
//! BER rises ([`photonics::ber::ReceiverModel`]) → a 64-bit bus word is
//! corrupted with probability `1 − (1 − BER)^bits`. Corruption is injected
//! deterministically through a seeded [`FaultSite`], so every faulty run is
//! exactly reproducible.
//!
//! Recovery: the terminus CRCs each coalesced burst against the CRC the
//! communication programs committed to ([`crate::crc`]); a mismatch triggers
//! a retry after an exponential backoff in bus slots, bounded by
//! `max_retries` — at which point the *protocol* layer (psync) must re-issue
//! the SCA pass or surface the failure.

use photonics::ber::ReceiverModel;
use photonics::thermal::ThermalModel;
use photonics::units::OpticalPower;
use photonics::wdm::WavelengthPlan;
use serde::{Deserialize, Serialize};
use sim_core::faults::{FaultSite, FaultStats};

/// Stream index of the terminus-receiver fault site under the config seed.
const STREAM_TERMINUS: u64 = 0;

/// Fault-injection knobs for one PSCAN instance.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PscanFaultConfig {
    /// Experiment seed; all fault streams derive from it.
    pub seed: u64,
    /// Probability an individual received bus word is corrupted.
    pub word_error_rate: f64,
    /// Link-layer retries per gather before giving up.
    pub max_retries: u32,
    /// First retry waits this many bus slots; each further retry doubles it.
    pub backoff_base_slots: u64,
    /// Backoff ceiling in bus slots.
    pub backoff_cap_slots: u64,
}

impl Default for PscanFaultConfig {
    fn default() -> Self {
        PscanFaultConfig {
            seed: 0,
            word_error_rate: 0.0,
            max_retries: 8,
            backoff_base_slots: 4,
            backoff_cap_slots: 1024,
        }
    }
}

impl PscanFaultConfig {
    /// Derive the word error rate from receiver physics: `rate_gbps` per-λ
    /// modulation and an average received power give a BER, and a bus word
    /// of `bits_per_slot` bits survives only if every bit does.
    pub fn from_physics(
        rx: &ReceiverModel,
        received: OpticalPower,
        plan: &WavelengthPlan,
        seed: u64,
    ) -> Self {
        let ber = rx.ber(received, plan.rate_gbps_per_lambda);
        let bits = plan.bits_per_slot() as f64;
        // 1 − (1 − BER)^bits, computed stably for tiny BER.
        let word_error_rate = -((1.0 - ber).ln() * bits).exp_m1();
        PscanFaultConfig {
            seed,
            word_error_rate: word_error_rate.clamp(0.0, 1.0),
            ..Default::default()
        }
    }

    /// Derate the received power for uncompensated thermal drift before
    /// deriving the word error rate.
    ///
    /// A ring detuned by `Δf` from its channel drops less power; for a
    /// Lorentzian resonance of `linewidth_ghz` FWHM the penalty is
    /// `10·log₁₀(1 + (2Δf/FWHM)²)` dB. `Δf` is the thermal drift of
    /// `delta_t_k` kelvin times the *uncompensated* fraction
    /// `(1 − compensation)` of the heater servo.
    #[allow(clippy::too_many_arguments)]
    pub fn from_thermal_physics(
        rx: &ReceiverModel,
        thermal: &ThermalModel,
        received: OpticalPower,
        linewidth_ghz: f64,
        delta_t_k: f64,
        compensation: f64,
        plan: &WavelengthPlan,
        seed: u64,
    ) -> Self {
        assert!(linewidth_ghz > 0.0);
        assert!((0.0..=1.0).contains(&compensation));
        let residual_ghz = thermal.drift_ghz_per_k * delta_t_k.abs() * (1.0 - compensation);
        let penalty_db = 10.0 * (1.0 + (2.0 * residual_ghz / linewidth_ghz).powi(2)).log10();
        let derated = OpticalPower::from_dbm(received.dbm() - penalty_db);
        PscanFaultConfig::from_physics(rx, derated, plan, seed)
    }

    /// Backoff before retry `attempt` (1-based), in bus slots: exponential,
    /// capped.
    pub fn backoff_slots(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(32);
        (self.backoff_base_slots << shift).min(self.backoff_cap_slots)
    }
}

/// Mutable fault state carried by a [`crate::network::Pscan`].
#[derive(Debug, Clone)]
pub struct PscanFaultState {
    /// The configuration.
    pub cfg: PscanFaultConfig,
    /// Corruption process at the terminus receiver.
    pub terminus: FaultSite,
    /// Aggregate counters across all transactions.
    pub stats: FaultStats,
}

impl PscanFaultState {
    /// Build the state for `cfg`.
    pub fn new(cfg: PscanFaultConfig) -> Self {
        PscanFaultState {
            terminus: FaultSite::new(cfg.seed, STREAM_TERMINUS, cfg.word_error_rate),
            cfg,
            stats: FaultStats::default(),
        }
    }

    /// Corrupt `word` in place if the terminus site fires; returns whether
    /// it did.
    pub fn corrupt(&mut self, word: &mut u64) -> bool {
        if !self.terminus.fire() {
            return false;
        }
        let bit = self.terminus.draw_bit(64);
        *word ^= 1u64 << bit;
        self.stats.injected += 1;
        true
    }
}

/// Outcome of a CRC-checked gather (see `Pscan::gather_reliable`).
#[derive(Debug, Clone)]
pub struct ReliableGatherOutcome {
    /// The bus outcome of the final (accepted) attempt, with received words
    /// as the terminus actually decoded them.
    pub outcome: crate::bus::GatherOutcome,
    /// Total gather attempts (1 = clean first pass).
    pub attempts: u32,
    /// CRC failures, i.e. `attempts - 1` for a successful transaction.
    pub retries: u32,
    /// Corrupted words observed across all attempts.
    pub corrupted_words: u64,
    /// Bus slots spent backing off between attempts.
    pub backoff_slots: u64,
    /// Total slots the transaction occupied the bus: every attempt's burst
    /// plus the backoffs.
    pub slots_on_bus: u64,
    /// Corrupted-word count attributed to the node whose CP drove the slot —
    /// the per-CP error counters a real head node would expose.
    pub errors_by_node: Vec<u64>,
    /// CRC of the accepted burst.
    pub crc: u32,
}

/// Structured error from the fault-aware PSCAN paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PscanError {
    /// The underlying bus rejected the transaction (CP bug, collision…).
    Bus(crate::bus::BusError),
    /// CRC failed on every attempt; the link-layer retry budget is spent.
    RetriesExhausted {
        /// Attempts made (= 1 + max_retries).
        attempts: u32,
        /// Corrupted words observed over all attempts.
        corrupted_words: u64,
    },
    /// The transaction was interrupted by the installed
    /// [`sim_core::cancel::Interrupt`] between gather attempts.
    Cancelled {
        /// The attempt the interrupt fired before (1 = before any pass).
        attempt: u32,
        /// Which interrupt source fired.
        cause: sim_core::cancel::CancelCause,
    },
}

impl std::fmt::Display for PscanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PscanError::Bus(e) => write!(f, "bus error: {e}"),
            PscanError::RetriesExhausted {
                attempts,
                corrupted_words,
            } => write!(
                f,
                "gather CRC failed on all {attempts} attempts ({corrupted_words} corrupted words)"
            ),
            PscanError::Cancelled { attempt, cause } => {
                write!(f, "gather Cancelled before attempt {attempt} ({cause})")
            }
        }
    }
}

impl std::error::Error for PscanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PscanError::Bus(e) => Some(e),
            PscanError::RetriesExhausted { .. } | PscanError::Cancelled { .. } => None,
        }
    }
}

impl From<crate::bus::BusError> for PscanError {
    fn from(e: crate::bus::BusError) -> Self {
        PscanError::Bus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physics_rate_tracks_power() {
        let rx = ReceiverModel::default();
        let plan = WavelengthPlan::paper_320g();
        let strong = PscanFaultConfig::from_physics(&rx, OpticalPower::from_dbm(-10.0), &plan, 1);
        let weak = PscanFaultConfig::from_physics(&rx, OpticalPower::from_dbm(-26.0), &plan, 1);
        assert!(strong.word_error_rate < 1e-12);
        assert!(weak.word_error_rate > strong.word_error_rate);
        assert!(weak.word_error_rate > 1e-6, "{}", weak.word_error_rate);
    }

    #[test]
    fn thermal_drift_raises_the_rate() {
        let rx = ReceiverModel::default();
        let th = ThermalModel::default();
        let plan = WavelengthPlan::paper_320g();
        let p = OpticalPower::from_dbm(-19.0);
        let cold = PscanFaultConfig::from_thermal_physics(&rx, &th, p, 20.0, 0.0, 0.0, &plan, 1);
        let hot = PscanFaultConfig::from_thermal_physics(&rx, &th, p, 20.0, 2.0, 0.0, &plan, 1);
        let servoed = PscanFaultConfig::from_thermal_physics(&rx, &th, p, 20.0, 2.0, 1.0, &plan, 1);
        assert!(hot.word_error_rate > cold.word_error_rate);
        assert_eq!(servoed.word_error_rate, cold.word_error_rate);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = PscanFaultConfig {
            backoff_base_slots: 4,
            backoff_cap_slots: 64,
            ..Default::default()
        };
        assert_eq!(cfg.backoff_slots(1), 4);
        assert_eq!(cfg.backoff_slots(2), 8);
        assert_eq!(cfg.backoff_slots(3), 16);
        assert_eq!(cfg.backoff_slots(5), 64);
        assert_eq!(cfg.backoff_slots(30), 64);
    }

    #[test]
    fn corrupt_is_deterministic_and_rate_zero_is_inert() {
        let run = |rate: f64| {
            let mut st = PscanFaultState::new(PscanFaultConfig {
                seed: 11,
                word_error_rate: rate,
                ..Default::default()
            });
            let mut words: Vec<u64> = (0..256).collect();
            let hits: u64 = words.iter_mut().map(|w| u64::from(st.corrupt(w))).sum();
            (words, hits, st.stats.injected)
        };
        let (w0, h0, inj0) = run(0.0);
        assert_eq!(h0, 0);
        assert_eq!(inj0, 0);
        assert_eq!(w0, (0..256).collect::<Vec<u64>>());
        let (wa, ha, _) = run(0.2);
        let (wb, hb, _) = run(0.2);
        assert!(ha > 0);
        assert_eq!(wa, wb, "same seed, same corruption pattern");
        assert_eq!(ha, hb);
    }
}
