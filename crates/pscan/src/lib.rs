//! # pscan
//!
//! The **Photonic Synchronous Coalesced Access Network** (paper §III): a
//! shared photonic bus on which spatially separate nodes splice data
//! *in flight* into one monolithic burst (the Synchronous Coalesced Access,
//! SCA) or carve one monolithic burst into per-node deliveries (SCA⁻¹).
//!
//! * [`cp`] — Communication Programs: the per-node slot schedules that make
//!   the coalescing collision-free. A CP is "a simple schedule ... loaded by
//!   the hardware unit responsible for communication" (§IV).
//! * [`compiler`] — derives a consistent set of CPs from an abstract
//!   slot-to-node mapping (gather) or node-to-slot mapping (scatter), the
//!   paper's future-work item "generation of distributed communication
//!   programs from abstract programmer constructs".
//! * [`bus`] — a discrete-event simulation of the photonic bus that executes
//!   CPs against the open-loop photonic clock, checks wavefront-ownership
//!   collisions, and reconstructs what the terminus photodiode sees.
//! * [`fifo`] — the dual-clock FIFO that decouples each node's core clock
//!   domain from the PSCAN clock domain (§III-A).
//! * [`network`] — the [`network::Pscan`] facade: build a bus from a chip
//!   layout + WDM plan, then run gathers and scatters and read timing,
//!   utilization and energy.
//! * [`arbitration`] — static-TDM sharing of the physical channel between
//!   SCA transactions and ordinary node-to-node messages (§IV's
//!   "multi-purpose physical channel"), respecting bus directionality.
//! * [`repeater`] — repeater-linked segment chains (§III-B: "individual
//!   PSCAN segments can be linked via repeaters to form larger networks").
//! * [`crc`] / [`faults`] — the resilience layer: CRC-32 burst integrity,
//!   BER/thermal-derived deterministic word corruption, and the bounded
//!   retry-with-backoff protocol exposed as `Pscan::gather_reliable`.

pub mod arbitration;
pub mod bus;
pub mod compiler;
pub mod cp;
pub mod crc;
pub mod faults;
pub mod fifo;
pub mod network;
pub mod redistribute;
pub mod repeater;
pub mod trace;

pub use arbitration::{Message, TdmPlanner};
pub use bus::{BusError, BusSim, GatherOutcome, ScatterOutcome, TransactOutcome};
pub use compiler::{CpCompiler, GatherSpec, ScatterSpec};
pub use cp::{CommProgram, CpAction, CpEntry};
pub use crc::{crc32_words, crc32_words_update};
pub use faults::{PscanError, PscanFaultConfig, PscanFaultState, ReliableGatherOutcome};
pub use fifo::DualClockFifo;
pub use network::{Pscan, PscanConfig};
pub use redistribute::{compile as compile_redistribution, Layout, Perm};
pub use repeater::RepeatedPscan;

/// Identifies a node tap on the bus, ordered by position (0 is nearest the
/// clock generator / bus head).
pub type NodeId = usize;

/// One-stop import for PSCAN experiments:
/// `use pscan::prelude::*;`.
pub mod prelude {
    pub use crate::compiler::{CpCompiler, GatherSpec, ScatterSpec};
    pub use crate::cp::CommProgram;
    pub use crate::faults::{PscanError, PscanFaultConfig};
    pub use crate::network::{Pscan, PscanConfig};
    pub use crate::NodeId;
}
