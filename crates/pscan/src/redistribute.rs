//! Compiling abstract data redistributions to communication programs —
//! the paper's §VIII future-work item "generation of distributed
//! communication programs from abstract programmer constructs".
//!
//! A programmer describes *where data lives* (a block-cyclic [`Layout`])
//! and *what order it must land in* (a [`Perm`] over element indices —
//! identity, matrix transpose, FFT bit-reversal, or a fixed stride, which
//! covers every access pattern in the paper). [`compile`] turns that into
//! the gather spec (who drives which wavefront) plus per-node drain orders,
//! ready to run on the bus — no hand-written CPs.

use serde::{Deserialize, Serialize};

use crate::compiler::GatherSpec;
use crate::NodeId;

/// A 1-D block-cyclic distribution of `n` elements over `procs` processors
/// with blocks of `block` elements (block = ⌈n/procs⌉ gives pure block;
/// block = 1 gives pure cyclic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Total elements.
    pub n: u64,
    /// Processors.
    pub procs: usize,
    /// Elements per dealt block.
    pub block: u64,
}

impl Layout {
    /// Pure block distribution.
    pub fn block(n: u64, procs: usize) -> Self {
        Layout {
            n,
            procs,
            block: n.div_ceil(procs as u64),
        }
    }

    /// Pure cyclic distribution.
    pub fn cyclic(n: u64, procs: usize) -> Self {
        Layout { n, procs, block: 1 }
    }

    /// Owner of element `e`.
    pub fn owner(&self, e: u64) -> NodeId {
        debug_assert!(e < self.n);
        ((e / self.block) % self.procs as u64) as NodeId
    }

    /// Local position of element `e` within its owner's memory (elements
    /// stored in ascending global order).
    pub fn local_index(&self, e: u64) -> u64 {
        let round = e / (self.block * self.procs as u64);
        round * self.block + e % self.block
    }

    /// Elements owned by `p`, in local-memory order.
    pub fn elements_of(&self, p: NodeId) -> Vec<u64> {
        (0..self.n).filter(|&e| self.owner(e) == p).collect()
    }
}

/// The target ordering of the coalesced stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Perm {
    /// Stream elements in index order (a plain gather).
    Identity,
    /// Treat indices as (row, col) of a row-major `rows × cols` matrix and
    /// stream its transpose — the corner turn.
    Transpose {
        /// Matrix rows.
        rows: u64,
        /// Matrix cols.
        cols: u64,
    },
    /// Stream in radix-2 bit-reversed order (FFT input permutation).
    BitReversal,
    /// Stream with a fixed stride (mod n): slot k carries element
    /// `(k·stride) mod n` — the Fig. 10 decimated delivery, `stride = k`.
    Stride {
        /// The stride; must be coprime with n to be a permutation.
        stride: u64,
    },
}

impl Perm {
    /// Element index occupying slot `k` of the target stream.
    pub fn source_element(&self, k: u64, n: u64) -> u64 {
        match *self {
            Perm::Identity => k,
            Perm::Transpose { rows, cols } => {
                debug_assert_eq!(rows * cols, n);
                // Slot k is (c, r) of the transposed matrix: element (r, c).
                let c = k / rows;
                let r = k % rows;
                r * cols + c
            }
            Perm::BitReversal => {
                debug_assert!(n.is_power_of_two());
                let bits = n.trailing_zeros();
                if bits == 0 {
                    k
                } else {
                    k.reverse_bits() >> (64 - bits)
                }
            }
            Perm::Stride { stride } => (k.wrapping_mul(stride)) % n,
        }
    }

    /// Whether this is a true permutation of `0..n`.
    pub fn is_permutation(&self, n: u64) -> bool {
        match *self {
            Perm::Identity | Perm::BitReversal | Perm::Transpose { .. } => true,
            Perm::Stride { stride } => gcd(stride, n) == 1,
        }
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A compiled redistribution: run `spec` with `drain_order`-arranged node
/// data to synthesize the target stream.
#[derive(Debug, Clone)]
pub struct CompiledRedistribution {
    /// Slot-to-source-node map (feeds [`crate::compiler::CpCompiler`] /
    /// [`crate::network::Pscan::gather`]).
    pub spec: GatherSpec,
    /// Per node: the *local memory indices* to feed the modulator, in slot
    /// order — the node's waveguide-interface drain program.
    pub drain_order: Vec<Vec<u64>>,
}

/// Compile a redistribution of `layout`-distributed data into `perm` order.
pub fn compile(layout: &Layout, perm: &Perm) -> CompiledRedistribution {
    assert!(
        perm.is_permutation(layout.n),
        "target ordering is not a permutation"
    );
    let n = layout.n;
    let mut slot_source = Vec::with_capacity(n as usize);
    let mut drain_order = vec![Vec::new(); layout.procs];
    for k in 0..n {
        let e = perm.source_element(k, n);
        let owner = layout.owner(e);
        slot_source.push(owner);
        drain_order[owner].push(layout.local_index(e));
    }
    CompiledRedistribution {
        spec: GatherSpec { slot_source },
        drain_order,
    }
}

/// Arrange each node's local data into drain order (what the waveguide
/// interface does as it feeds the modulator).
pub fn arrange_data(red: &CompiledRedistribution, local: &[Vec<u64>]) -> Vec<Vec<u64>> {
    red.drain_order
        .iter()
        .zip(local)
        .map(|(order, mem)| order.iter().map(|&i| mem[i as usize]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{Pscan, PscanConfig};

    /// End-to-end helper: distribute 0..n by `layout`, redistribute by
    /// `perm`, and return the coalesced stream.
    fn run(layout: Layout, perm: Perm) -> Vec<u64> {
        let red = compile(&layout, &perm);
        // Node memories hold their elements' global ids in local order.
        let local: Vec<Vec<u64>> = (0..layout.procs).map(|p| layout.elements_of(p)).collect();
        let data = arrange_data(&red, &local);
        let pscan = Pscan::new(PscanConfig {
            nodes: layout.procs,
            ..Default::default()
        });
        let out = pscan.gather(&red.spec, &data).unwrap();
        assert_eq!(out.utilization, 1.0);
        out.received.iter().map(|w| w.unwrap()).collect()
    }

    #[test]
    fn identity_gather_restores_index_order() {
        for layout in [Layout::block(64, 8), Layout::cyclic(64, 8)] {
            let stream = run(layout, Perm::Identity);
            assert_eq!(stream, (0..64).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn transpose_streams_column_major() {
        let stream = run(Layout::block(64, 8), Perm::Transpose { rows: 8, cols: 8 });
        // Slot k should carry element (k%8)*8 + k/8.
        for (k, &e) in stream.iter().enumerate() {
            let k = k as u64;
            assert_eq!(e, (k % 8) * 8 + k / 8);
        }
    }

    #[test]
    fn bit_reversal_matches_fft_permutation() {
        let stream = run(Layout::cyclic(16, 4), Perm::BitReversal);
        let expect: Vec<u64> = (0..16u64).map(|k| k.reverse_bits() >> 60).collect();
        assert_eq!(stream, expect);
    }

    #[test]
    fn strided_delivery_is_the_fig10_decimation() {
        // stride 5 is coprime with 16.
        let stream = run(Layout::block(16, 4), Perm::Stride { stride: 5 });
        let expect: Vec<u64> = (0..16u64).map(|k| k * 5 % 16).collect();
        assert_eq!(stream, expect);
    }

    #[test]
    fn non_coprime_stride_rejected() {
        assert!(!Perm::Stride { stride: 4 }.is_permutation(16));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn compile_rejects_non_permutations() {
        compile(&Layout::block(16, 4), &Perm::Stride { stride: 8 });
    }

    #[test]
    fn block_cyclic_owner_and_local_index() {
        let l = Layout {
            n: 24,
            procs: 3,
            block: 2,
        };
        // Blocks of 2 dealt to P0,P1,P2: elements 0,1->P0; 2,3->P1; ...
        assert_eq!(l.owner(0), 0);
        assert_eq!(l.owner(3), 1);
        assert_eq!(l.owner(4), 2);
        assert_eq!(l.owner(6), 0);
        // P0 owns 0,1,6,7,12,13,...: local index of 6 is 2.
        assert_eq!(l.local_index(6), 2);
        assert_eq!(l.elements_of(0), vec![0, 1, 6, 7, 12, 13, 18, 19]);
    }

    #[test]
    fn cross_layout_roundtrip() {
        // Redistribute block->stream (identity), then conceptually reload
        // cyclic: compile from the cyclic layout with identity must also
        // restore order — two different CP sets, same stream.
        let a = run(Layout::block(32, 4), Perm::Identity);
        let b = run(Layout::cyclic(32, 4), Perm::Identity);
        assert_eq!(a, b);
    }
}
