//! The [`Pscan`] facade: configure once, then run SCA / SCA⁻¹ transactions.
//!
//! ```
//! use pscan::compiler::GatherSpec;
//! use pscan::network::{Pscan, PscanConfig};
//!
//! // Four processors interleave one word each into a coalesced burst.
//! let pscan = Pscan::new(PscanConfig { nodes: 4, ..Default::default() });
//! let spec = GatherSpec { slot_source: vec![0, 1, 2, 3] };
//! let data: Vec<Vec<u64>> = (0..4).map(|n| vec![n * 10]).collect();
//! let out = pscan.gather(&spec, &data).unwrap();
//! assert_eq!(out.utilization, 1.0); // gap-free, full line rate
//! let burst: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
//! assert_eq!(burst, vec![0, 10, 20, 30]);
//! ```

use photonics::energy::{EnergyBreakdown, PhotonicEnergyModel};
use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use serde::{Deserialize, Serialize};
use sim_core::time::Duration;

use crate::bus::{BusError, BusSim, GatherOutcome, ScatterOutcome};
use crate::compiler::{CpCompiler, GatherSpec, ScatterSpec};

/// Configuration of a PSCAN instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PscanConfig {
    /// Number of processor taps.
    pub nodes: usize,
    /// Die edge in millimetres (paper: 20 mm).
    pub die_mm: f64,
    /// WDM plan (paper: 32 λ × 10 Gb/s).
    pub plan: WavelengthPlan,
}

impl Default for PscanConfig {
    fn default() -> Self {
        PscanConfig {
            nodes: 256,
            die_mm: 20.0,
            plan: WavelengthPlan::paper_320g(),
        }
    }
}

impl PscanConfig {
    /// The paper's Table III configuration: 1024 processors.
    pub fn paper_1024() -> Self {
        PscanConfig {
            nodes: 1024,
            ..Default::default()
        }
    }
}

/// A configured PSCAN: compiler + bus simulator + energy model.
#[derive(Debug, Clone)]
pub struct Pscan {
    cfg: PscanConfig,
    bus: BusSim,
    energy: PhotonicEnergyModel,
}

impl Pscan {
    /// Build a PSCAN over a square serpentine layout.
    pub fn new(cfg: PscanConfig) -> Self {
        let layout = ChipLayout::square(cfg.die_mm, cfg.nodes);
        let bus = BusSim::new(layout, cfg.plan.clone());
        let energy = PhotonicEnergyModel {
            plan: cfg.plan.clone(),
            ..Default::default()
        };
        Pscan { cfg, bus, energy }
    }

    /// The configuration.
    pub fn config(&self) -> &PscanConfig {
        &self.cfg
    }

    /// The underlying bus simulator.
    pub fn bus(&self) -> &BusSim {
        &self.bus
    }

    /// One bus-slot period.
    pub fn slot(&self) -> Duration {
        self.cfg.plan.slot()
    }

    /// Compile and execute a gather in one call.
    pub fn gather(&self, spec: &GatherSpec, data: &[Vec<u64>]) -> Result<GatherOutcome, BusError> {
        let cps = CpCompiler.compile_gather(spec, self.cfg.nodes);
        self.bus.gather(&cps, data)
    }

    /// Compile and execute a scatter in one call.
    pub fn scatter(&self, spec: &ScatterSpec, burst: &[u64]) -> Result<ScatterOutcome, BusError> {
        let cps = CpCompiler.compile_scatter(spec, self.cfg.nodes);
        self.bus.scatter(&cps, burst)
    }

    /// Number of bus cycles to move `bits` at full utilization — the PSCAN
    /// side of Table III's arithmetic.
    pub fn cycles_for_bits(&self, bits: u64) -> u64 {
        self.cfg.plan.slots_for_bits(bits)
    }

    /// Energy breakdown per bit for SCA traffic on this configuration.
    pub fn energy_per_bit(&self) -> EnergyBreakdown {
        self.energy.sca_energy(self.bus.layout())
    }

    /// Total energy in joules for a transaction carrying `bits`.
    pub fn transaction_energy_j(&self, bits: u64) -> f64 {
        self.energy_per_bit().total_pj_per_bit() * 1e-12 * bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_gather_through_facade() {
        let p = Pscan::new(PscanConfig {
            nodes: 8,
            ..Default::default()
        });
        let spec = GatherSpec::interleaved(8, 4, 2);
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 8]).collect();
        let out = p.gather(&spec, &data).unwrap();
        assert_eq!(out.utilization, 1.0);
        assert_eq!(out.received.len(), 64);
        // Order: 4 slots from each node, twice around.
        assert_eq!(out.received[0], Some(0));
        assert_eq!(out.received[4], Some(1));
        assert_eq!(out.received[32], Some(0));
    }

    #[test]
    fn end_to_end_scatter_through_facade() {
        let p = Pscan::new(PscanConfig {
            nodes: 4,
            ..Default::default()
        });
        let spec = ScatterSpec::blocked(4, 4);
        let burst: Vec<u64> = (0..16).collect();
        let out = p.scatter(&spec, &burst).unwrap();
        assert_eq!(out.delivered[2], vec![8, 9, 10, 11]);
    }

    #[test]
    fn cycles_for_bits_matches_plan() {
        let p = Pscan::new(PscanConfig::default());
        // 2048-bit row + 64-bit header over a 32-bit bus word = 66 slots.
        assert_eq!(p.cycles_for_bits(2048 + 64), 66);
    }

    #[test]
    fn energy_is_positive_and_finite() {
        let p = Pscan::new(PscanConfig::paper_1024());
        let e = p.energy_per_bit().total_pj_per_bit();
        assert!(e.is_finite() && e > 0.0);
        let j = p.transaction_energy_j(1 << 20);
        assert!(j > 0.0);
    }
}
