//! The [`Pscan`] facade: configure once, then run SCA / SCA⁻¹ transactions.
//!
//! ```
//! use pscan::compiler::GatherSpec;
//! use pscan::network::{Pscan, PscanConfig};
//!
//! // Four processors interleave one word each into a coalesced burst.
//! let pscan = Pscan::new(PscanConfig { nodes: 4, ..Default::default() });
//! let spec = GatherSpec { slot_source: vec![0, 1, 2, 3] };
//! let data: Vec<Vec<u64>> = (0..4).map(|n| vec![n * 10]).collect();
//! let out = pscan.gather(&spec, &data).unwrap();
//! assert_eq!(out.utilization, 1.0); // gap-free, full line rate
//! let burst: Vec<u64> = out.received.iter().map(|w| w.unwrap()).collect();
//! assert_eq!(burst, vec![0, 10, 20, 30]);
//! ```

use photonics::energy::{EnergyBreakdown, PhotonicEnergyModel};
use photonics::waveguide::ChipLayout;
use photonics::wdm::WavelengthPlan;
use std::cell::Cell;

use serde::{Deserialize, Serialize};
use sim_core::cancel::Interrupt;
use sim_core::invariant;
use sim_core::telemetry::Registry;
use sim_core::time::Duration;

use crate::bus::{BusError, BusSim, GatherOutcome, ScatterOutcome};
use crate::compiler::{CpCompiler, GatherSpec, ScatterSpec};
use crate::crc::crc32_words_update;
use crate::faults::{PscanError, PscanFaultConfig, PscanFaultState, ReliableGatherOutcome};

/// Configuration of a PSCAN instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PscanConfig {
    /// Number of processor taps.
    pub nodes: usize,
    /// Die edge in millimetres (paper: 20 mm).
    pub die_mm: f64,
    /// WDM plan (paper: 32 λ × 10 Gb/s).
    pub plan: WavelengthPlan,
}

impl Default for PscanConfig {
    fn default() -> Self {
        PscanConfig {
            nodes: 256,
            die_mm: 20.0,
            plan: WavelengthPlan::paper_320g(),
        }
    }
}

impl PscanConfig {
    /// The paper's baseline configuration (synonym of `Default`): 256
    /// processors on a 20 mm die with the 32 λ × 10 Gb/s plan. Refine with
    /// the `with_*` builders:
    ///
    /// ```
    /// use pscan::network::PscanConfig;
    /// let cfg = PscanConfig::paper_default().with_nodes(64);
    /// assert_eq!(cfg.nodes, 64);
    /// ```
    pub fn paper_default() -> Self {
        PscanConfig::default()
    }

    /// The paper's Table III configuration: 1024 processors.
    pub fn paper_1024() -> Self {
        PscanConfig::paper_default().with_nodes(1024)
    }

    /// Set the processor-tap count.
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Set the die edge in millimetres.
    #[must_use]
    pub fn with_die_mm(mut self, die_mm: f64) -> Self {
        self.die_mm = die_mm;
        self
    }

    /// Replace the WDM plan.
    #[must_use]
    pub fn with_plan(mut self, plan: WavelengthPlan) -> Self {
        self.plan = plan;
        self
    }
}

/// A configured PSCAN: compiler + bus simulator + energy model, plus an
/// optional fault layer (off by default; zero-cost when absent).
#[derive(Debug, Clone)]
pub struct Pscan {
    cfg: PscanConfig,
    bus: BusSim,
    energy: PhotonicEnergyModel,
    faults: Option<PscanFaultState>,
    /// Telemetry registry; `None` (the default) leaves the transaction
    /// paths untouched. Transactions are placed back-to-back on a
    /// bus-slot timeline (`tel_cursor`, one slot = one trace microsecond).
    telemetry: Option<Registry>,
    tel_cursor: Cell<u64>,
    /// Cooperative interrupt, polled once per retry attempt inside
    /// [`Pscan::gather_reliable`]. `None` (the default) leaves the
    /// transaction paths untouched. The single-pass [`Pscan::gather`] and
    /// [`Pscan::scatter`] are one bounded burst each and are not polled.
    interrupt: Option<Interrupt>,
}

/// Cap on per-CP drive/listen spans recorded for one transaction: a
/// finely interleaved spec over a 2^20-slot burst is a million runs, which
/// no trace viewer (or RAM budget) wants. Excess runs are counted in
/// `pscan.cp.spans_dropped` instead.
const MAX_CP_SPANS: usize = 4096;

/// Contiguous runs of the same node in a slot→node map: `(node, start,
/// len)`. This is exactly the per-CP drive (gather) or listen (scatter)
/// schedule, since a CP owns its slots in contiguous turns.
fn node_runs(slots: &[usize]) -> Vec<(usize, usize, usize)> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < slots.len() {
        let node = slots[i];
        let start = i;
        while i < slots.len() && slots[i] == node {
            i += 1;
        }
        runs.push((node, start, i - start));
    }
    runs
}

impl Pscan {
    /// Build a PSCAN over a square serpentine layout.
    pub fn new(cfg: PscanConfig) -> Self {
        let layout = ChipLayout::square(cfg.die_mm, cfg.nodes);
        let bus = BusSim::new(layout, cfg.plan.clone());
        let energy = PhotonicEnergyModel {
            plan: cfg.plan.clone(),
            ..Default::default()
        };
        Pscan {
            cfg,
            bus,
            energy,
            faults: None,
            telemetry: None,
            tel_cursor: Cell::new(0),
            interrupt: None,
        }
    }

    /// Install a cooperative [`Interrupt`]: [`Pscan::gather_reliable`]
    /// polls it before each CRC attempt and aborts with
    /// [`PscanError::Cancelled`] when a source fires. Replaces any earlier
    /// interrupt; with none installed the retry loop is untouched.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = Some(interrupt);
    }

    /// Remove the installed interrupt.
    pub fn clear_interrupt(&mut self) {
        self.interrupt = None;
    }

    /// Attach (or replace) a telemetry registry. Each subsequent
    /// transaction records bus-occupancy counters and per-CP drive/listen
    /// spans (process `pscan`, track `cp N`), placed back-to-back on a
    /// bus-slot timeline where one slot renders as one trace microsecond.
    pub fn enable_telemetry(&mut self) {
        self.telemetry = Some(Registry::new());
        self.tel_cursor.set(0);
    }

    /// The telemetry registry, if attached.
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telemetry.as_ref()
    }

    /// Detach and return the telemetry registry.
    pub fn take_telemetry(&mut self) -> Option<Registry> {
        self.telemetry.take()
    }

    /// Record one transaction: advance the slot timeline, bump bus
    /// counters, and emit one span per contiguous per-CP slot run plus a
    /// whole-burst span on the terminus track.
    fn tel_transaction(&self, kind: &str, cp_phase: &str, slots: &[usize], burst_slots: u64) {
        let Some(reg) = &self.telemetry else { return };
        let at = self.tel_cursor.get();
        self.tel_cursor.set(at + burst_slots.max(1));
        reg.counter_add("pscan.bus.slots_total", burst_slots);
        reg.counter_add(&format!("pscan.bus.{kind}s"), 1);
        reg.span(
            "pscan",
            "terminus",
            kind,
            at as f64,
            burst_slots as f64,
            &[("slots", burst_slots.to_string())],
        );
        let runs = node_runs(slots);
        for &(node, start, len) in runs.iter().take(MAX_CP_SPANS) {
            reg.span(
                "pscan",
                &format!("cp {node}"),
                cp_phase,
                (at + start as u64) as f64,
                len as f64,
                &[("slots", len.to_string())],
            );
        }
        if runs.len() > MAX_CP_SPANS {
            reg.counter_add("pscan.cp.spans_dropped", (runs.len() - MAX_CP_SPANS) as u64);
        }
    }

    /// Attach (or replace) the fault layer. The ideal [`Pscan::gather`] path
    /// is untouched; only [`Pscan::gather_reliable`] consults it.
    pub fn set_faults(&mut self, cfg: PscanFaultConfig) {
        self.faults = Some(PscanFaultState::new(cfg));
    }

    /// The fault layer, if attached.
    pub fn faults(&self) -> Option<&PscanFaultState> {
        self.faults.as_ref()
    }

    /// The configuration.
    pub fn config(&self) -> &PscanConfig {
        &self.cfg
    }

    /// The underlying bus simulator.
    pub fn bus(&self) -> &BusSim {
        &self.bus
    }

    /// One bus-slot period.
    pub fn slot(&self) -> Duration {
        self.cfg.plan.slot()
    }

    /// Compile and execute a gather in one call.
    pub fn gather(&self, spec: &GatherSpec, data: &[Vec<u64>]) -> Result<GatherOutcome, BusError> {
        let cps = CpCompiler.compile_gather(spec, self.cfg.nodes);
        let out = self.bus.gather(&cps, data)?;
        if self.telemetry.is_some() {
            self.tel_transaction(
                "gather",
                "drive",
                &spec.slot_source,
                out.received.len() as u64,
            );
        }
        Ok(out)
    }

    /// A CRC-checked gather with bounded retry — the fault-aware sibling of
    /// [`Pscan::gather`].
    ///
    /// Each attempt replays the SCA burst; the terminus corrupts received
    /// words according to the attached fault layer, checksums the burst
    /// ([`crate::crc`]) against the CRC the communication programs committed
    /// to, and on mismatch backs off exponentially (in bus slots, bounded by
    /// the config cap) before retrying. Corrupted words are attributed to the
    /// node whose CP drove the slot, giving per-CP error counters. With no
    /// fault layer (or at word error rate 0) this is exactly one clean pass
    /// and consumes no randomness.
    pub fn gather_reliable(
        &mut self,
        spec: &GatherSpec,
        data: &[Vec<u64>],
    ) -> Result<ReliableGatherOutcome, PscanError> {
        let cps = CpCompiler.compile_gather(spec, self.cfg.nodes);
        let clean = self.bus.gather(&cps, data)?;
        // The CRC the senders commit to: over the words they spliced, in
        // wavefront order (gap slots carry no word and are skipped).
        let committed_crc = clean
            .received
            .iter()
            .flatten()
            .fold(0u32, |c, &w| crc32_words_update(c, &[w]));
        let burst_slots = clean.received.len() as u64;

        let fcfg = self.faults.as_ref().map(|f| f.cfg);
        let max_attempts = fcfg.map_or(1, |c| c.max_retries + 1);
        let mut errors_by_node = vec![0u64; self.cfg.nodes];
        let mut corrupted_total = 0u64;
        let mut backoff_total = 0u64;
        let mut slots_on_bus = 0u64;

        for attempt in 1..=max_attempts {
            if let Some(intr) = self.interrupt.as_mut() {
                if let Some(cause) = intr.check(u64::from(attempt - 1)) {
                    return Err(PscanError::Cancelled { attempt, cause });
                }
            }
            slots_on_bus += burst_slots;
            let mut received = clean.received.clone();
            let mut corrupted_this_pass = 0u64;
            if let Some(state) = self.faults.as_mut() {
                for (slot, word) in received.iter_mut().enumerate() {
                    if let Some(w) = word.as_mut() {
                        if state.corrupt(w) {
                            corrupted_this_pass += 1;
                            if let Some(&node) = spec.slot_source.get(slot) {
                                if node < errors_by_node.len() {
                                    errors_by_node[node] += 1;
                                }
                            }
                        }
                    }
                }
            }
            corrupted_total += corrupted_this_pass;
            let observed_crc = received
                .iter()
                .flatten()
                .fold(0u32, |c, &w| crc32_words_update(c, &[w]));
            if observed_crc == committed_crc {
                if let Some(reg) = &self.telemetry {
                    self.tel_transaction("gather", "drive", &spec.slot_source, slots_on_bus);
                    reg.counter_add("pscan.crc.retries", u64::from(attempt - 1));
                    reg.counter_add("pscan.crc.corrupted_words", corrupted_total);
                    reg.counter_add("pscan.crc.backoff_slots", backoff_total);
                }
                // CRC/retry bookkeeping (DESIGN.md §12): every corrupted
                // word is attributed to a driving CP, and bus occupancy
                // decomposes exactly into burst passes plus backoff waits.
                invariant!(
                    errors_by_node.iter().sum::<u64>() == corrupted_total,
                    "crc accounting: per-node errors {} != corrupted words {corrupted_total}",
                    errors_by_node.iter().sum::<u64>()
                );
                invariant!(
                    slots_on_bus == u64::from(attempt) * burst_slots + backoff_total,
                    "crc accounting: {slots_on_bus} slots on bus != {attempt} bursts of \
                     {burst_slots} + {backoff_total} backoff"
                );
                let mut outcome = clean;
                outcome.received = received;
                return Ok(ReliableGatherOutcome {
                    outcome,
                    attempts: attempt,
                    retries: attempt - 1,
                    corrupted_words: corrupted_total,
                    backoff_slots: backoff_total,
                    slots_on_bus,
                    errors_by_node,
                    crc: observed_crc,
                });
            }
            if let Some(state) = self.faults.as_mut() {
                state.stats.detected += corrupted_this_pass;
                if attempt < max_attempts {
                    state.stats.retries += 1;
                    let wait = state.cfg.backoff_slots(attempt);
                    backoff_total += wait;
                    slots_on_bus += wait;
                } else {
                    state.stats.giveups += 1;
                }
            }
        }
        if let Some(reg) = &self.telemetry {
            self.tel_transaction("gather", "drive", &spec.slot_source, slots_on_bus);
            reg.counter_add("pscan.crc.retries", u64::from(max_attempts - 1));
            reg.counter_add("pscan.crc.corrupted_words", corrupted_total);
            reg.counter_add("pscan.crc.backoff_slots", backoff_total);
            reg.counter_add("pscan.crc.giveups", 1);
        }
        Err(PscanError::RetriesExhausted {
            attempts: max_attempts,
            corrupted_words: corrupted_total,
        })
    }

    /// Compile and execute a scatter in one call.
    pub fn scatter(&self, spec: &ScatterSpec, burst: &[u64]) -> Result<ScatterOutcome, BusError> {
        let cps = CpCompiler.compile_scatter(spec, self.cfg.nodes);
        let out = self.bus.scatter(&cps, burst)?;
        if self.telemetry.is_some() {
            self.tel_transaction("scatter", "listen", &spec.slot_dest, burst.len() as u64);
        }
        Ok(out)
    }

    /// Number of bus cycles to move `bits` at full utilization — the PSCAN
    /// side of Table III's arithmetic.
    pub fn cycles_for_bits(&self, bits: u64) -> u64 {
        self.cfg.plan.slots_for_bits(bits)
    }

    /// Energy breakdown per bit for SCA traffic on this configuration.
    pub fn energy_per_bit(&self) -> EnergyBreakdown {
        self.energy.sca_energy(self.bus.layout())
    }

    /// Total energy in joules for a transaction carrying `bits`.
    pub fn transaction_energy_j(&self, bits: u64) -> f64 {
        self.energy_per_bit().total_pj_per_bit() * 1e-12 * bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_gather_through_facade() {
        let p = Pscan::new(PscanConfig {
            nodes: 8,
            ..Default::default()
        });
        let spec = GatherSpec::interleaved(8, 4, 2);
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 8]).collect();
        let out = p.gather(&spec, &data).unwrap();
        assert_eq!(out.utilization, 1.0);
        assert_eq!(out.received.len(), 64);
        // Order: 4 slots from each node, twice around.
        assert_eq!(out.received[0], Some(0));
        assert_eq!(out.received[4], Some(1));
        assert_eq!(out.received[32], Some(0));
    }

    #[test]
    fn end_to_end_scatter_through_facade() {
        let p = Pscan::new(PscanConfig {
            nodes: 4,
            ..Default::default()
        });
        let spec = ScatterSpec::blocked(4, 4);
        let burst: Vec<u64> = (0..16).collect();
        let out = p.scatter(&spec, &burst).unwrap();
        assert_eq!(out.delivered[2], vec![8, 9, 10, 11]);
    }

    #[test]
    fn cycles_for_bits_matches_plan() {
        let p = Pscan::new(PscanConfig::default());
        // 2048-bit row + 64-bit header over a 32-bit bus word = 66 slots.
        assert_eq!(p.cycles_for_bits(2048 + 64), 66);
    }

    #[test]
    fn gather_reliable_without_faults_is_one_clean_pass() {
        let mut p = Pscan::new(PscanConfig {
            nodes: 4,
            ..Default::default()
        });
        let spec = GatherSpec {
            slot_source: vec![0, 1, 2, 3],
        };
        let data: Vec<Vec<u64>> = (0..4).map(|n| vec![n * 10]).collect();
        let clean = p.gather(&spec, &data).unwrap();
        let out = p.gather_reliable(&spec, &data).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.retries, 0);
        assert_eq!(out.corrupted_words, 0);
        assert_eq!(out.backoff_slots, 0);
        assert_eq!(out.outcome.received, clean.received);
        assert_eq!(out.slots_on_bus, clean.received.len() as u64);
        assert!(out.errors_by_node.iter().all(|&e| e == 0));
    }

    #[test]
    fn gather_reliable_zero_rate_matches_clean_and_draws_nothing() {
        let mut p = Pscan::new(PscanConfig {
            nodes: 4,
            ..Default::default()
        });
        p.set_faults(PscanFaultConfig {
            seed: 5,
            word_error_rate: 0.0,
            ..Default::default()
        });
        let spec = GatherSpec {
            slot_source: vec![0, 1, 2, 3],
        };
        let data: Vec<Vec<u64>> = (0..4).map(|n| vec![n + 7]).collect();
        let clean = p.gather(&spec, &data).unwrap();
        let out = p.gather_reliable(&spec, &data).unwrap();
        assert_eq!(out.outcome.received, clean.received);
        assert_eq!(out.retries, 0);
        assert_eq!(p.faults().unwrap().stats.injected, 0);
    }

    #[test]
    fn gather_reliable_retries_and_recovers_under_noise() {
        let mut p = Pscan::new(PscanConfig {
            nodes: 8,
            ..Default::default()
        });
        p.set_faults(PscanFaultConfig {
            seed: 2,
            word_error_rate: 0.05,
            max_retries: 64,
            ..Default::default()
        });
        let spec = GatherSpec::interleaved(8, 2, 2);
        let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 4]).collect();
        let clean = p.gather(&spec, &data).unwrap();
        let out = p.gather_reliable(&spec, &data).unwrap();
        // At 5% per word over a 32-word burst, a pass fails with p ≈ 0.8, so
        // the 64-retry budget recovers with near certainty (and this seed is
        // deterministic); the accepted burst is clean.
        assert!(out.retries > 0, "expected at least one retry");
        assert_eq!(out.outcome.received, clean.received);
        assert!(out.corrupted_words > 0);
        assert!(out.backoff_slots > 0);
        assert!(out.slots_on_bus > clean.received.len() as u64);
        assert_eq!(
            out.errors_by_node.iter().sum::<u64>(),
            out.corrupted_words,
            "every corrupted word is attributed to a driving CP"
        );
        let stats = p.faults().unwrap().stats;
        assert_eq!(stats.retries, u64::from(out.retries));
        assert_eq!(stats.giveups, 0);
    }

    #[test]
    fn gather_reliable_exhausts_retries_at_rate_one() {
        let mut p = Pscan::new(PscanConfig {
            nodes: 4,
            ..Default::default()
        });
        p.set_faults(PscanFaultConfig {
            seed: 3,
            word_error_rate: 1.0,
            max_retries: 3,
            ..Default::default()
        });
        let spec = GatherSpec {
            slot_source: vec![0, 1, 2, 3],
        };
        let data: Vec<Vec<u64>> = (0..4).map(|n| vec![n]).collect();
        match p.gather_reliable(&spec, &data) {
            Err(PscanError::RetriesExhausted {
                attempts,
                corrupted_words,
            }) => {
                assert_eq!(attempts, 4);
                assert!(corrupted_words >= 4);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(p.faults().unwrap().stats.giveups, 1);
    }

    #[test]
    fn gather_reliable_is_deterministic() {
        let run = || {
            let mut p = Pscan::new(PscanConfig {
                nodes: 8,
                ..Default::default()
            });
            p.set_faults(PscanFaultConfig {
                seed: 77,
                word_error_rate: 0.02,
                max_retries: 64,
                ..Default::default()
            });
            let spec = GatherSpec::interleaved(8, 4, 4);
            let data: Vec<Vec<u64>> = (0..8).map(|n| vec![n as u64; 16]).collect();
            let out = p.gather_reliable(&spec, &data).unwrap();
            (out.attempts, out.corrupted_words, out.slots_on_bus, out.crc)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn energy_is_positive_and_finite() {
        let p = Pscan::new(PscanConfig::paper_1024());
        let e = p.energy_per_bit().total_pj_per_bit();
        assert!(e.is_finite() && e > 0.0);
        let j = p.transaction_energy_j(1 << 20);
        assert!(j > 0.0);
    }
}
