//! Sharing the PSCAN physical layer with non-SCA traffic.
//!
//! §IV: "the PSCAN physical layer was deliberately designed to be generic,
//! such that it could be shared with other traffic besides SCA and SCA⁻¹
//! transactions" — P-sync "does not preclude communication between
//! processors". This module provides the static-TDM planner that makes that
//! sharing collision-free: SCA transactions reserve slot ranges up front;
//! point-to-point messages are packed into the remaining slots, respecting
//! the waveguide's directionality (a message can only flow downstream).

use serde::{Deserialize, Serialize};

use crate::cp::{CommProgram, CpAction, CpEntry};
use crate::NodeId;

/// A point-to-point message request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Sender (must be upstream of the receiver).
    pub src: NodeId,
    /// Receiver.
    pub dst: NodeId,
    /// Payload length in bus words.
    pub words: u64,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// src ≥ dst: the waveguide only flows downstream.
    WrongDirection {
        /// The offending message index.
        index: usize,
    },
    /// Not enough free slots in the frame.
    FrameFull {
        /// Slots still needed when the frame ran out.
        deficit: u64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::WrongDirection { index } => {
                write!(
                    f,
                    "message {index} flows upstream: impossible on a directional bus"
                )
            }
            PlanError::FrameFull { deficit } => {
                write!(f, "frame too small: {deficit} more slots needed")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A TDM frame plan: per-node programs combining reserved SCA runs and
/// packed messages.
#[derive(Debug, Clone)]
pub struct FramePlan {
    /// Per-node combined communication programs.
    pub programs: Vec<CommProgram>,
    /// Slot ranges assigned to each message, in request order.
    pub message_slots: Vec<(u64, u64)>,
    /// Total frame length in slots.
    pub frame_len: u64,
}

/// Plans a frame of `frame_len` slots over `nodes` nodes.
#[derive(Debug, Clone)]
pub struct TdmPlanner {
    nodes: usize,
    frame_len: u64,
    /// (start, len, node) reservations from SCA transactions.
    reserved: Vec<(u64, u64, NodeId)>,
}

impl TdmPlanner {
    /// New planner.
    pub fn new(nodes: usize, frame_len: u64) -> Self {
        TdmPlanner {
            nodes,
            frame_len,
            reserved: Vec::new(),
        }
    }

    /// Reserve `[start, start+len)` for `node` to drive (an SCA share).
    ///
    /// # Panics
    /// Panics on out-of-frame or overlapping reservations — reservations
    /// come from the SCA compiler, which never produces either.
    pub fn reserve(&mut self, node: NodeId, start: u64, len: u64) -> &mut Self {
        assert!(node < self.nodes, "node {node} out of range");
        assert!(start + len <= self.frame_len, "reservation exceeds frame");
        for &(s, l, _) in &self.reserved {
            assert!(
                start + len <= s || s + l <= start,
                "overlapping reservation"
            );
        }
        self.reserved.push((start, len, node));
        self
    }

    /// Pack `messages` into the unreserved slots and emit per-node CPs.
    pub fn plan(&self, messages: &[Message]) -> Result<FramePlan, PlanError> {
        for (i, m) in messages.iter().enumerate() {
            if m.src >= m.dst || m.dst >= self.nodes {
                return Err(PlanError::WrongDirection { index: i });
            }
        }
        // Free-slot scan: sorted reservations, then first-fit packing.
        let mut res = self.reserved.clone();
        res.sort_unstable();
        let mut free: Vec<(u64, u64)> = Vec::new(); // (start, len)
        let mut cursor = 0;
        for &(s, l, _) in &res {
            if s > cursor {
                free.push((cursor, s - cursor));
            }
            cursor = s + l;
        }
        if cursor < self.frame_len {
            free.push((cursor, self.frame_len - cursor));
        }

        // Per-node entry lists: start from reservations (Drive).
        let mut drive: Vec<Vec<CpEntry>> = vec![Vec::new(); self.nodes];
        let mut listen: Vec<Vec<CpEntry>> = vec![Vec::new(); self.nodes];
        for &(s, l, n) in &res {
            drive[n].push(CpEntry {
                start: s,
                len: l,
                action: CpAction::Drive,
            });
        }

        let mut message_slots = Vec::with_capacity(messages.len());
        let mut fi = 0;
        for m in messages {
            let mut need = m.words;
            let mut first = None;
            // Messages may fragment across free runs; record the first
            // fragment for reporting.
            while need > 0 {
                let Some(run) = free.get_mut(fi) else {
                    return Err(PlanError::FrameFull { deficit: need });
                };
                if run.1 == 0 {
                    fi += 1;
                    continue;
                }
                let take = need.min(run.1);
                let start = run.0;
                if first.is_none() {
                    first = Some(start);
                }
                drive[m.src].push(CpEntry {
                    start,
                    len: take,
                    action: CpAction::Drive,
                });
                listen[m.dst].push(CpEntry {
                    start,
                    len: take,
                    action: CpAction::Listen,
                });
                run.0 += take;
                run.1 -= take;
                need -= take;
            }
            message_slots.push((first.expect("nonzero message"), m.words));
        }

        // Merge drive + listen per node, sort, build programs.
        let mut programs = Vec::with_capacity(self.nodes);
        for n in 0..self.nodes {
            let mut entries = drive[n].clone();
            entries.extend(listen[n].iter().copied());
            entries.sort_by_key(|e| e.start);
            programs.push(CommProgram::new(entries).expect("planner produced overlapping entries"));
        }
        Ok(FramePlan {
            programs,
            message_slots,
            frame_len: self.frame_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::BusSim;
    use photonics::waveguide::ChipLayout;
    use photonics::wdm::WavelengthPlan;

    #[test]
    fn messages_pack_around_reservations() {
        let mut p = TdmPlanner::new(4, 32);
        p.reserve(1, 8, 8); // an SCA share in the middle of the frame
        let plan = p
            .plan(&[
                Message {
                    src: 0,
                    dst: 3,
                    words: 8,
                },
                Message {
                    src: 0,
                    dst: 2,
                    words: 10,
                },
            ])
            .unwrap();
        // First message fits before the reservation; second wraps past it.
        assert_eq!(plan.message_slots[0], (0, 8));
        assert_eq!(plan.message_slots[1].0, 16);
        // Programs are valid and disjoint in Drive slots.
        assert!(crate::compiler::CpCompiler::audit_disjoint(&plan.programs).is_ok());
    }

    #[test]
    fn planned_frame_executes_on_the_bus() {
        let mut p = TdmPlanner::new(4, 16);
        p.reserve(2, 0, 4);
        let plan = p
            .plan(&[Message {
                src: 0,
                dst: 1,
                words: 3,
            }])
            .unwrap();
        let bus = BusSim::new(ChipLayout::square(20.0, 4), WavelengthPlan::paper_320g());
        // Node 2 drives its SCA share; node 0 drives the message.
        let data = vec![vec![100, 101, 102], vec![], vec![1, 2, 3, 4], vec![]];
        let out = bus.transact(&plan.programs, &data).unwrap();
        assert_eq!(out.delivered[1], vec![100, 101, 102]);
        // SCA share coalesces at the terminus untouched.
        assert_eq!(
            out.gather.received[0..4],
            [Some(1), Some(2), Some(3), Some(4)]
        );
    }

    #[test]
    fn upstream_messages_rejected() {
        let p = TdmPlanner::new(4, 16);
        let err = p
            .plan(&[Message {
                src: 3,
                dst: 1,
                words: 1,
            }])
            .unwrap_err();
        assert_eq!(err, PlanError::WrongDirection { index: 0 });
        let err = p
            .plan(&[Message {
                src: 2,
                dst: 2,
                words: 1,
            }])
            .unwrap_err();
        assert_eq!(err, PlanError::WrongDirection { index: 0 });
    }

    #[test]
    fn overfull_frame_rejected() {
        let mut p = TdmPlanner::new(2, 8);
        p.reserve(0, 0, 6);
        let err = p
            .plan(&[Message {
                src: 0,
                dst: 1,
                words: 4,
            }])
            .unwrap_err();
        assert_eq!(err, PlanError::FrameFull { deficit: 2 });
    }

    #[test]
    #[should_panic(expected = "overlapping reservation")]
    fn overlapping_reservations_rejected() {
        let mut p = TdmPlanner::new(4, 32);
        p.reserve(0, 0, 8).reserve(1, 4, 8);
    }
}
