//! Dual-clock FIFO between the core clock domain and the PSCAN clock domain.
//!
//! "Each network node can utilize a dual-clock FIFO circuit to separate the
//! disparate clock domains of the compute core and the PSCAN" (§III-A). For
//! the SCA the core pushes at its own rate and the bus pops exactly on the
//! node's CP slots; for the SCA⁻¹ the directions reverse. The model tracks
//! occupancy over time so node designs can be sized (and mis-sized designs
//! fail loudly).

use sim_core::time::Time;

/// Why a FIFO operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoError {
    /// Push into a full FIFO.
    Overflow {
        /// When it happened.
        at: Time,
    },
    /// Pop from an empty FIFO.
    Underflow {
        /// When it happened.
        at: Time,
    },
    /// Operations were issued out of time order.
    TimeTravel {
        /// The out-of-order timestamp.
        at: Time,
    },
}

impl std::fmt::Display for FifoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FifoError::Overflow { at } => write!(f, "FIFO overflow at {at}"),
            FifoError::Underflow { at } => write!(f, "FIFO underflow at {at}"),
            FifoError::TimeTravel { at } => write!(f, "FIFO op out of time order at {at}"),
        }
    }
}

impl std::error::Error for FifoError {}

/// A bounded FIFO of `u64` words with occupancy tracking.
#[derive(Debug, Clone)]
pub struct DualClockFifo {
    depth: usize,
    buf: std::collections::VecDeque<u64>,
    last_op: Time,
    high_water: usize,
    pushes: u64,
    pops: u64,
}

impl DualClockFifo {
    /// FIFO holding at most `depth` words.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        DualClockFifo {
            depth,
            buf: std::collections::VecDeque::with_capacity(depth),
            last_op: Time::ZERO,
            high_water: 0,
            pushes: 0,
            pops: 0,
        }
    }

    fn check_time(&mut self, at: Time) -> Result<(), FifoError> {
        if at < self.last_op {
            return Err(FifoError::TimeTravel { at });
        }
        self.last_op = at;
        Ok(())
    }

    /// Push `word` at time `at` (writer clock domain).
    pub fn push(&mut self, at: Time, word: u64) -> Result<(), FifoError> {
        self.check_time(at)?;
        if self.buf.len() == self.depth {
            return Err(FifoError::Overflow { at });
        }
        self.buf.push_back(word);
        self.high_water = self.high_water.max(self.buf.len());
        self.pushes += 1;
        Ok(())
    }

    /// Pop a word at time `at` (reader clock domain).
    pub fn pop(&mut self, at: Time) -> Result<u64, FifoError> {
        self.check_time(at)?;
        let w = self.buf.pop_front().ok_or(FifoError::Underflow { at })?;
        self.pops += 1;
        Ok(w)
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.buf.len()
    }

    /// Deepest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total pushes so far.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops so far.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Capacity.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// Minimum FIFO depth for interleaved push/pop schedules, computed by a dry
/// run: merge the two timestamp streams (pushes win ties, i.e. data is
/// available to the bus the same instant the core delivers it) and track
/// peak occupancy.
///
/// Useful for sizing a node's waveguide-interface FIFO given its CP and its
/// core's production schedule.
pub fn required_depth(push_times: &[Time], pop_times: &[Time]) -> usize {
    let mut occupancy: isize = 0;
    let mut peak: isize = 0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < push_times.len() || j < pop_times.len() {
        let take_push = match (push_times.get(i), pop_times.get(j)) {
            (Some(p), Some(q)) => p <= q,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!(),
        };
        if take_push {
            occupancy += 1;
            peak = peak.max(occupancy);
            i += 1;
        } else {
            occupancy -= 1;
            j += 1;
        }
    }
    peak.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ps: u64) -> Time {
        Time::from_ps(ps)
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut f = DualClockFifo::new(4);
        f.push(t(0), 10).unwrap();
        f.push(t(1), 20).unwrap();
        assert_eq!(f.pop(t(2)).unwrap(), 10);
        assert_eq!(f.pop(t(3)).unwrap(), 20);
        assert_eq!(f.occupancy(), 0);
        assert_eq!(f.high_water(), 2);
    }

    #[test]
    fn overflow_detected() {
        let mut f = DualClockFifo::new(2);
        f.push(t(0), 1).unwrap();
        f.push(t(1), 2).unwrap();
        assert_eq!(f.push(t(2), 3), Err(FifoError::Overflow { at: t(2) }));
    }

    #[test]
    fn underflow_detected() {
        let mut f = DualClockFifo::new(2);
        assert_eq!(f.pop(t(5)), Err(FifoError::Underflow { at: t(5) }));
    }

    #[test]
    fn time_order_enforced() {
        let mut f = DualClockFifo::new(2);
        f.push(t(10), 1).unwrap();
        assert_eq!(f.push(t(5), 2), Err(FifoError::TimeTravel { at: t(5) }));
    }

    #[test]
    fn required_depth_balanced_stream() {
        // Core pushes every 4 ps, bus pops every 4 ps offset by 1: depth 1.
        let pushes: Vec<Time> = (0..16).map(|i| t(i * 4)).collect();
        let pops: Vec<Time> = (0..16).map(|i| t(i * 4 + 1)).collect();
        assert_eq!(required_depth(&pushes, &pops), 1);
    }

    #[test]
    fn required_depth_bursty_producer() {
        // Core delivers 8 words at once; bus drains one per slot: depth 8.
        let pushes: Vec<Time> = (0..8).map(|_| t(0)).collect();
        let pops: Vec<Time> = (0..8).map(|i| t(100 + i * 100)).collect();
        assert_eq!(required_depth(&pushes, &pops), 8);
    }

    #[test]
    fn required_depth_ties_count_push_first() {
        // Push and pop at the same instant: word flows through, depth 1.
        assert_eq!(required_depth(&[t(5)], &[t(5)]), 1);
    }

    #[test]
    fn counts_track_ops() {
        let mut f = DualClockFifo::new(4);
        for i in 0..3 {
            f.push(t(i), i).unwrap();
        }
        f.pop(t(10)).unwrap();
        assert_eq!(f.pushes(), 3);
        assert_eq!(f.pops(), 1);
        assert_eq!(f.depth(), 4);
    }
}
