//! Offline vendored mini-proptest.
//!
//! Supports the subset of proptest 1.x this workspace's property tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]` line,
//! range and collection strategies, `Just`, `prop_oneof!`, `prop_map`,
//! `prop::bool::ANY`, and the `prop_assert!` family. Cases are sampled from
//! a deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly. There is no shrinking: a failing case reports its
//! inputs via the panic message instead.

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (xoshiro-style mix over SplitMix64 expansion).
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded construction.
    pub fn seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, for deriving per-test seeds from test names.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for Map<S, F> {
    type Value = R;
    fn sample(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// A boxed sampling function, as stored by [`OneOf`].
pub type Sampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Heterogeneous uniform choice; built by [`prop_oneof!`].
pub struct OneOf<V>(pub Vec<Sampler<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.0.len() as u64) as usize;
        (self.0[k])(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: an exact `usize` or a `Range<usize>`.
    pub struct SizeRange {
        lo: u64,
        hi: u64, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n as u64,
                hi: n as u64 + 1,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start as u64,
                hi: r.end as u64,
            }
        }
    }

    /// `Vec` strategy: `len` draws of `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Random-length vector of values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within a case (from `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The everything-you-need import, as in real proptest.
pub mod prelude {
    pub use crate::collection as _collection_impl;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };

    /// `prop::...` namespace.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Assert inside a proptest body; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice between heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {{
        let mut choices: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>,
        > = ::std::vec::Vec::new();
        $(
            {
                let s = $strat;
                choices.push(::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                    $crate::Strategy::sample(&s, rng)
                }));
            }
        )+
        $crate::OneOf(choices)
    }};
}

/// The proptest entry macro: expands each `fn name(arg in strategy, ...)`
/// into a `#[test]` that samples and runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::seed(
                        $crate::fnv1a(stringify!($name)) ^ (0x9E37_79B9u64.wrapping_mul(case as u64 + 1)),
                    );
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e,
                            concat!($(stringify!($arg), " "),*),
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::seed(1);
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::sample(&(-49i64..=49), &mut rng);
            assert!((-49..=49).contains(&w));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::seed(2);
        let s = prop::collection::vec(0u64..10, 1..5);
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let exact = prop::collection::vec(0u64..10, 7usize);
        assert_eq!(Strategy::sample(&exact, &mut rng).len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_expands_and_runs(x in 0u64..100, ys in prop::collection::vec(0u32..4, 3)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), 3, "len {}", ys.len());
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            Just(1u64),
            (10u64..20).prop_map(|x| x * 2),
        ]) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn bool_any_samples(b in prop::bool::ANY) {
            // Exercise the bool strategy; either value is acceptable.
            let _ = b;
            prop_assert!(true);
        }
    }
}
