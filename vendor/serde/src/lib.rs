//! Offline vendored mini-serde.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the serde surface it
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus a JSON value tree consumed by the vendored `serde_json`.
//!
//! Design deviations from real serde (deliberate, for size):
//!
//! * [`Serialize`] produces an owned [`Value`] tree instead of driving a
//!   `Serializer` visitor; `serde_json` pretty-prints that tree.
//! * [`Deserialize`] is a marker trait: nothing in this workspace parses.
//! * No `#[serde(...)]` attributes, no generics on derived types — the
//!   derive macro rejects what it cannot handle rather than mis-serialize.

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup by key (last occurrence wins, so a duplicate key
    /// behaves like most JSON parsers). `None` for non-objects and missing
    /// keys — lookups on a request envelope chain without panicking.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer (including a
    /// float with an exact non-negative integer value, e.g. `3.0`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The item slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {}

/// Marker trait: this workspace never deserializes, but types still write
/// `#[derive(Deserialize)]` so the bound must exist.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u64) } else { Value::Int(*self as i64) }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = u64::try_from(*self) {
            Value::UInt(n)
        } else {
            Value::Float(*self as f64)
        }
    }
}
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = i64::try_from(*self) {
            n.to_value()
        } else {
            Value::Float(*self as f64)
        }
    }
}
impl Deserialize for u128 {}
impl Deserialize for i128 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for f64 {}
impl Deserialize for f32 {}
impl Deserialize for bool {}
impl Deserialize for String {}
impl Deserialize for char {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(7i64.to_value(), Value::UInt(7));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn value_accessors_navigate_trees() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(3)),
            ("s".into(), Value::Str("x".into())),
            ("f".into(), Value::Float(2.0)),
            ("neg".into(), Value::Int(-1)),
            ("a".into(), Value::Array(vec![Value::Bool(true)])),
            ("n".into(), Value::UInt(4)), // duplicate: last wins
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(4));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("f").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.get("neg").and_then(Value::as_u64), None);
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-1.0));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
        assert!(Value::Null.is_null());
    }
}
