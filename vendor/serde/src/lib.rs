//! Offline vendored mini-serde.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, self-contained implementation of the serde surface it
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs and
//! enums, plus a JSON value tree consumed by the vendored `serde_json`.
//!
//! Design deviations from real serde (deliberate, for size):
//!
//! * [`Serialize`] produces an owned [`Value`] tree instead of driving a
//!   `Serializer` visitor; `serde_json` pretty-prints that tree.
//! * [`Deserialize`] is a marker trait: nothing in this workspace parses.
//! * No `#[serde(...)]` attributes, no generics on derived types — the
//!   derive macro rejects what it cannot handle rather than mis-serialize.

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order preserved).
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// The value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Marker trait: this workspace never deserializes, but types still write
/// `#[derive(Deserialize)]` so the bound must exist.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u64) } else { Value::Int(*self as i64) }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = u64::try_from(*self) {
            Value::UInt(n)
        } else {
            Value::Float(*self as f64)
        }
    }
}
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if let Ok(n) = i64::try_from(*self) {
            n.to_value()
        } else {
            Value::Float(*self as f64)
        }
    }
}
impl Deserialize for u128 {}
impl Deserialize for i128 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for f64 {}
impl Deserialize for f32 {}
impl Deserialize for bool {}
impl Deserialize for String {}
impl Deserialize for char {}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-2i64).to_value(), Value::Int(-2));
        assert_eq!(7i64.to_value(), Value::UInt(7));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(None::<u64>.to_value(), Value::Null);
        assert_eq!(
            vec![1u64, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }
}
