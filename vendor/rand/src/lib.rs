//! Offline vendored mini-rand.
//!
//! Implements the rand 0.8 API subset this workspace touches —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}` —
//! over xoshiro256**. Streams differ from real `StdRng` (different cipher),
//! but everything in the workspace only requires seeded determinism, never a
//! specific stream.

use std::ops::{Range, RangeInclusive};

/// Core RNG: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from all bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range specifications accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Uniform draw from `[0, span)` by widening multiply (span ≤ 2⁶⁴).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

/// Convenience sampling methods, as in rand 0.8.
pub trait Rng: RngCore {
    /// Uniform value over `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** (Blackman & Vigna) — fast, 256-bit state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(2);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..=5);
            assert!(v <= 5);
            let w: i64 = r.gen_range(-3i64..4);
            assert!((-3..4).contains(&w));
            let f: f64 = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_range_types_sample() {
        let mut r = StdRng::seed_from_u64(3);
        let _: u32 = r.gen();
        let _: bool = r.gen();
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
