//! Derive macros for the vendored mini-serde.
//!
//! Parses the derive input token stream by hand (the container has no
//! network, so no syn/quote) and emits `impl serde::Serialize` /
//! `impl serde::Deserialize`. Supports exactly the shapes this workspace
//! derives on: non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, named-field, or tuple. Anything else is a compile
//! error rather than a silent mis-serialization.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: field count.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum: (variant name, variant shape) pairs.
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Field names of a `{ ... }` named-field body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Expect `:`, then consume the type up to a top-level `,`
        // (angle-bracket depth tracked; delimited groups are single tokens).
        assert!(
            matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        i += 1;
        let mut angle = 0i32;
        while let Some(t) = toks.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Field count of a `( ... )` tuple body: top-level commas + 1.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (k, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // A trailing comma does not start a new field.
                ',' if angle == 0 && k + 1 < toks.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, VariantShape)> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_and_vis(&toks, i);
        let Some(TokenTree::Ident(name)) = toks.get(i) else {
            break;
        };
        let vname = name.to_string();
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = VariantShape::Named(parse_named_fields(g));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = VariantShape::Tuple(count_tuple_fields(g));
                i += 1;
                s
            }
            _ => VariantShape::Unit,
        };
        variants.push((vname, shape));
        // Skip an optional `= discriminant` and the separating comma.
        while let Some(t) = toks.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("serde_derive: unsupported enum body {other:?}"),
        },
        k => panic!("serde_derive: cannot derive for `{k}`"),
    };
    Parsed { name, shape }
}

/// `#[derive(Serialize)]`: emit `impl serde::Serialize` building a
/// `serde::Value` tree with real serde's external-tagging conventions.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        // Newtype structs serialize transparently, like real serde.
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),")
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![({v:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![({v:?}.to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

/// `#[derive(Deserialize)]`: marker impl only — nothing here parses.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, .. } = parse_input(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("serde_derive: generated impl must parse")
}
