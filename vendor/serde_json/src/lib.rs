//! Offline vendored mini serde_json: renders the vendored mini-serde's
//! [`serde::Value`] tree as JSON text, and parses JSON text back into that
//! tree ([`from_str`]) for the experiment-service wire protocol.

use serde::{Serialize, Value};

/// Serialization error. The vendored implementation is infallible, but the
/// type keeps call sites source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}
impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON, two-space indent (matches real serde_json's default).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
                write_value(o, it, indent, d)
            })
        }
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // serde_json always marks floats as floats.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; print null like
        // JavaScript's JSON.stringify to stay infallible.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub detail: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.detail)
    }
}
impl std::error::Error for ParseError {}

/// Parse one JSON document into a [`Value`] tree. Trailing non-whitespace
/// after the document is an error (a line of NDJSON is exactly one value).
///
/// Numbers follow the [`Value`] convention: non-negative integers that fit
/// a `u64` become [`Value::UInt`], negative integers that fit an `i64`
/// become [`Value::Int`], everything else becomes [`Value::Float`].
/// Object key order is preserved and duplicate keys are kept as-is (last
/// lookup wins through [`serde::Value::get`]).
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Nesting ceiling for arrays/objects: deep enough for any real request,
/// shallow enough that a hostile `[[[[…` line cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, detail: impl Into<String>) -> ParseError {
        ParseError {
            detail: detail.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty checked above");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Four hex digits after `\u`; leaves `pos` just past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'0') {
            self.pos += 1;
        } else if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        } else {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(2.5), Value::Null]),
            ),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&W(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2.5,\n    null\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_float(&mut s, 3.0);
        assert_eq!(s, "3.0");
    }

    #[test]
    fn strings_escape_controls() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\n");
        assert_eq!(s, r#""a\"b\n""#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-0.5e-1").unwrap(), Value::Float(-0.05));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let v = from_str(r#"{"b":[1,{"x":null}],"a":"s"}"#).unwrap();
        assert_eq!(
            v,
            Value::Object(vec![
                (
                    "b".into(),
                    Value::Array(vec![
                        Value::UInt(1),
                        Value::Object(vec![("x".into(), Value::Null)]),
                    ]),
                ),
                ("a".into(), Value::Str("s".into())),
            ])
        );
    }

    #[test]
    fn parses_string_escapes_and_unicode() {
        assert_eq!(
            from_str(r#""a\"\\\n\t\u0041""#).unwrap(),
            Value::Str("a\"\\\n\tA".into())
        );
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("😀".into())
        );
        assert_eq!(from_str("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn round_trips_through_to_string() {
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let src = r#"{"a":1,"b":[true,null,"x\ny"],"c":-2,"d":0.5}"#;
        let v = from_str(src).unwrap();
        assert_eq!(to_string(&W(v.clone())).unwrap(), src);
        assert_eq!(from_str(&to_string(&W(v.clone())).unwrap()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "01x",
            "\"abc",
            "{\"a\":1} trailing",
            "[1 2]",
            "\"\\q\"",
            "nan",
            "+1",
            "--1",
            "1e",
            "\"\\ud800\"",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let e = from_str("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn integer_width_overflow_degrades_to_float() {
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert!(matches!(
            from_str("18446744073709551616").unwrap(),
            Value::Float(_)
        ));
        assert_eq!(
            from_str("-9223372036854775808").unwrap(),
            Value::Int(i64::MIN)
        );
        assert!(matches!(
            from_str("-9223372036854775809").unwrap(),
            Value::Float(_)
        ));
    }
}
