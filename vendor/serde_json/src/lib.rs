//! Offline vendored mini serde_json: renders the vendored mini-serde's
//! [`serde::Value`] tree as JSON text. Only the serialization half exists —
//! nothing in this workspace parses JSON.

use serde::{Serialize, Value};

/// Serialization error. The vendored implementation is infallible, but the
/// type keeps call sites source-compatible with real serde_json.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}
impl std::error::Error for Error {}

/// Compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Pretty JSON, two-space indent (matches real serde_json's default).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, it, d| {
                write_value(o, it, indent, d)
            })
        }
        Value::Object(pairs) => write_seq(
            out,
            pairs.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // serde_json always marks floats as floats.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json errors on non-finite floats; print null like
        // JavaScript's JSON.stringify to stay infallible.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(2.5), Value::Null]),
            ),
        ]);
        struct W(Value);
        impl Serialize for W {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&W(v)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2.5,\n    null\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_float(&mut s, 3.0);
        assert_eq!(s, "3.0");
    }

    #[test]
    fn strings_escape_controls() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\n");
        assert_eq!(s, r#""a\"b\n""#);
    }
}
