//! Offline vendored mini-rayon.
//!
//! Provides `par_iter()` / `into_par_iter()` with `map`, `for_each`, and
//! `collect` over real OS threads (`std::thread::scope`), preserving input
//! order. Unlike real rayon there is no work-stealing pool: each adaptor
//! call evaluates eagerly, splitting the items into one contiguous chunk
//! per available core. That is exactly the right shape for this workspace's
//! use — embarrassingly parallel sweeps of a few dozen heavy, similar-cost
//! simulations.

use std::num::NonZeroUsize;

/// `use rayon::prelude::*` brings the conversion traits into scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// An eagerly evaluated "parallel iterator": a materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion by value (`Vec`, ranges).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range!(u32, u64, usize);

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Conversion by reference (slices).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// Materialize the parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    cores.min(items).max(1)
}

/// Order-preserving parallel map: one contiguous chunk per worker.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .chunks_mut(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|slot| f(slot.take().expect("slot filled once")))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, &f);
    }

    /// Collect the (already computed) items.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sum the items.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slices_yields_refs() {
        let xs = vec![1u64, 2, 3];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn map_actually_uses_threads() {
        // Thread ids seen by workers; > 1 distinct on multicore machines.
        let main = std::thread::current().id();
        let ids: Vec<_> = (0usize..64)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            assert!(ids.iter().any(|&id| id != main));
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let e: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(e.is_empty());
        let s: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(s, vec![8]);
    }
}
