//! Offline vendored mini-criterion.
//!
//! Implements the criterion 0.5 API surface this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`) with plain wall-clock timing: each
//! benchmark body runs `sample_size` times and the mean/min are printed.
//! No statistics, plots, or saved baselines — just enough to keep
//! `cargo bench` meaningful offline.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier (`group/function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    samples: usize,
}

impl Bencher {
    /// Time `f` over the configured number of samples.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed().as_secs_f64();
            best = best.min(dt);
            total += dt;
        }
        println!(
            "    {} samples, mean {:.3} ms, best {:.3} ms",
            self.samples,
            total / self.samples as f64 * 1e3,
            best * 1e3
        );
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (criterion's default is 100; ours is lighter).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark a closure given an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        println!("  {}/{}", self.name, id.id);
        let mut b = Bencher {
            samples: self.samples,
        };
        f(&mut b, input);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  {}/{}", self.name, id);
        let mut b = Bencher {
            samples: self.samples,
        };
        f(&mut b);
        self
    }

    /// End the group (no-op; criterion writes reports here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            _c: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        println!("  {id}");
        let mut b = Bencher { samples: 10 };
        f(&mut b);
        self
    }
}

/// Prevent the optimizer from deleting a value (re-export shape).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("x", 1), &1u32, |b, &v| {
                b.iter(|| {
                    ran += v;
                })
            });
            g.finish();
        }
        assert_eq!(ran, 3);
    }
}
